"""Tests for the observability layer (``repro.obs``).

Four groups:

* unit tests for the primitives — spans, counters, histograms, the
  ambient-tracer runtime, the JSONL sink and its validator;
* guard tests for the *disabled* path: an untraced solve must allocate
  zero ``Span`` objects (asserted by monkeypatching the span class);
* integration: traced solves across engines and worker counts produce
  schema-valid traces with the expected span taxonomy, and tracing
  never perturbs the result;
* the acceptance metric: on a bundled dataset the per-ego spans must
  account for >= 90% of the sweep span's wall time
  (``span_time_coverage``).
"""

import json

import pytest

import repro.obs.tracer as tracer_module
from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star
from repro.datasets.registry import load
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    SCHEMA_VERSION,
    NullTracer,
    TraceBuffer,
    Tracer,
    current_tracer,
    dump_jsonl,
    get_tracer,
    install_tracer,
    render_tree,
    span_time_coverage,
    trace_events,
    validate_trace_file,
    validate_trace_lines,
    write_jsonl,
)
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_HISTOGRAM,
    Counter,
    Histogram,
)


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


@pytest.fixture(autouse=True)
def _clean_ambient():
    """Never leak an ambient tracer between tests."""
    previous = install_tracer(None)
    yield
    install_tracer(previous)


class TestCounter:
    def test_increments(self):
        counter = Counter("nodes")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert counter.snapshot() == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            Counter("nodes").inc(-1)

    def test_absorb_folds_snapshot(self):
        counter = Counter("nodes")
        counter.inc(2)
        counter.absorb(Counter("nodes").snapshot())
        counter.absorb(7)
        assert counter.value == 9

    def test_null_counter_is_inert(self):
        NULL_COUNTER.inc(10)
        assert NULL_COUNTER.value == 0


class TestHistogram:
    def test_buckets_are_upper_inclusive(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 11.0):
            hist.observe(value)
        assert hist.buckets == [2, 2, 1]
        assert hist.count == 5
        assert hist.min == 0.5
        assert hist.max == 11.0
        assert hist.mean == pytest.approx(27.5 / 5)

    def test_empty_mean_is_none(self):
        assert Histogram("h").mean is None

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", bounds=(2.0, 1.0))

    def test_absorb_merges_snapshots(self):
        a = Histogram("h", bounds=(1.0,))
        b = Histogram("h", bounds=(1.0,))
        a.observe(0.5)
        b.observe(3.0)
        a.absorb(b.snapshot())
        assert a.count == 2
        assert a.buckets == [1, 1]
        assert a.min == 0.5
        assert a.max == 3.0

    def test_absorb_rejects_different_bounds(self):
        a = Histogram("h", bounds=(1.0,))
        b = Histogram("h", bounds=(2.0,))
        with pytest.raises(ValueError, match="bucket bounds"):
            a.absorb(b.snapshot())

    def test_null_histogram_is_inert(self):
        NULL_HISTOGRAM.observe(1.0)
        assert NULL_HISTOGRAM.count == 0


class TestTracer:
    def test_nested_spans_record_ids_and_parents(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", n=3) as outer:
            with tracer.span("inner") as inner:
                inner.count("nodes")
                inner.count("nodes", 2)
            outer.set(found=True)
        records = {r["name"]: r for r in tracer.records}
        assert records["outer"]["id"] == 0
        assert records["outer"]["parent"] is None
        assert records["outer"]["attrs"] == {"n": 3, "found": True}
        assert records["inner"]["parent"] == 0
        assert records["inner"]["attrs"] == {"nodes": 3}
        # Parent ids always precede child ids.
        assert records["inner"]["id"] > records["outer"]["id"]

    def test_elapsed_uses_injected_clock(self):
        clock = FakeClock(step=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("solve"):
            pass
        (record,) = tracer.records
        # Epoch read, open read, close read: start 1.0, elapsed 1.0.
        assert record["start"] == pytest.approx(1.0)
        assert record["elapsed"] == pytest.approx(1.0)

    def test_span_survives_exceptions(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("solve"):
                raise RuntimeError("boom")
        assert [r["name"] for r in tracer.records] == ["solve"]

    def test_mismatched_close_asserts(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(AssertionError, match="must nest"):
            outer.__exit__(None, None, None)

    def test_metrics_registry_is_per_name(self):
        tracer = Tracer(clock=FakeClock())
        tracer.counter("nodes").inc(2)
        tracer.counter("nodes").inc(3)
        tracer.histogram("sizes").observe(4.0)
        assert tracer.counters_snapshot() == {"nodes": 5}
        assert tracer.histograms_snapshot()["sizes"]["count"] == 1

    def test_export_absorb_roundtrip_renumbers_and_grafts(self):
        worker = Tracer(clock=FakeClock())
        with worker.span("chunk"):
            with worker.span("ego", v=7):
                pass
        worker.counter("nodes").inc(5)
        worker.histogram("mdc.nodes").observe(5.0)
        buffer = worker.export_buffer()

        parent = Tracer(clock=FakeClock())
        with parent.span("fanout") as fanout:
            parent.absorb(buffer, chunk=2)
            graft_parent = fanout.id
        records = {r["name"]: r for r in parent.records}
        assert records["chunk"]["parent"] == graft_parent
        assert records["chunk"]["attrs"] == {"chunk": 2}
        assert records["ego"]["parent"] == records["chunk"]["id"]
        assert records["ego"]["attrs"] == {"v": 7}
        ids = [r["id"] for r in parent.records]
        assert len(ids) == len(set(ids))
        assert parent.counters_snapshot() == {"nodes": 5}
        assert parent.histograms_snapshot()["mdc.nodes"]["count"] == 1

    def test_absorb_empty_and_none_are_noops(self):
        tracer = Tracer(clock=FakeClock())
        tracer.absorb(None)
        tracer.absorb(TraceBuffer())
        assert tracer.records == []

    def test_buffer_is_plain_data(self):
        import pickle

        worker = Tracer(clock=FakeClock())
        with worker.span("chunk"):
            pass
        restored = pickle.loads(pickle.dumps(worker.export_buffer()))
        assert restored.spans[0]["name"] == "chunk"


class TestNullTracer:
    def test_span_returns_shared_singleton(self):
        assert NULL_TRACER.span("anything", v=1) is NULL_SPAN
        assert not NULL_TRACER.enabled

    def test_null_span_operations_are_noops(self):
        with NULL_TRACER.span("s") as span:
            assert span.set(x=1) is span
            span.count("nodes")
        assert NULL_TRACER.records == []

    def test_metrics_are_shared_nulls(self):
        assert NULL_TRACER.counter("c") is NULL_COUNTER
        assert NULL_TRACER.histogram("h") is NULL_HISTOGRAM
        assert NULL_TRACER.counters_snapshot() == {}
        assert NULL_TRACER.histograms_snapshot() == {}

    def test_absorb_discards(self):
        buffer = TraceBuffer(spans=[{
            "id": 0, "parent": None, "name": "x", "start": 0.0,
            "elapsed": 0.0, "attrs": {}}])
        NULL_TRACER.absorb(buffer)
        assert NULL_TRACER.records == []
        assert NULL_TRACER.export_buffer().is_empty


class TestRuntime:
    def test_get_tracer_disabled_is_the_shared_null(self):
        assert get_tracer(False) is NULL_TRACER
        assert get_tracer(True) is not get_tracer(True)
        assert isinstance(get_tracer(True), Tracer)

    def test_install_returns_previous_and_restores(self):
        assert current_tracer() is NULL_TRACER
        first = get_tracer(True)
        assert install_tracer(first) is None
        assert current_tracer() is first
        second = get_tracer(True)
        assert install_tracer(second) is first
        assert current_tracer() is second
        install_tracer(None)
        assert current_tracer() is NULL_TRACER


class TestSink:
    def _traced(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("solve", n=4):
            with tracer.span("ego", v=0):
                pass
        tracer.counter("nodes").inc(3)
        tracer.histogram("mdc.nodes").observe(3.0)
        return tracer

    def test_trace_events_layout(self):
        events = trace_events(self._traced())
        assert events[0] == {
            "type": "meta", "schema": SCHEMA_VERSION, "span_count": 2,
            "counter_count": 1, "histogram_count": 1}
        kinds = [e["type"] for e in events[1:]]
        assert kinds == ["span", "span", "counter", "histogram"]
        span_ids = [e["id"] for e in events if e["type"] == "span"]
        assert span_ids == sorted(span_ids)

    def test_write_and_validate_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        lines = write_jsonl(self._traced(), path)
        assert lines == 5
        assert validate_trace_file(path) == 2

    def test_dump_jsonl_counts_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            assert dump_jsonl(self._traced(), handle) == 5
        assert len(path.read_text().splitlines()) == 5

    def test_validator_rejects_garbage(self):
        assert validate_trace_lines([]) == \
            ["empty trace: missing meta header"]
        assert any("not valid JSON" in e
                   for e in validate_trace_lines(["{oops"]))
        assert any("meta header" in e for e in validate_trace_lines(
            ['{"type":"span","id":0}']))

    def test_validator_rejects_wrong_schema(self):
        bad = json.dumps({"type": "meta", "schema": "repro.obs/999",
                          "span_count": 0, "counter_count": 0,
                          "histogram_count": 0})
        assert any("unsupported schema" in e
                   for e in validate_trace_lines([bad]))

    def test_validator_rejects_orphan_parent_and_dup_ids(self):
        meta = json.dumps({"type": "meta", "schema": SCHEMA_VERSION,
                           "span_count": 2, "counter_count": 0,
                           "histogram_count": 0})
        span = {"type": "span", "id": 0, "parent": 5, "name": "x",
                "start": 0.0, "elapsed": 0.0, "attrs": {}}
        errors = validate_trace_lines(
            [meta, json.dumps(span), json.dumps({**span, "parent": None})])
        assert any("parent 5 not seen earlier" in e for e in errors)
        assert any("duplicated" in e for e in errors)

    def test_validator_rejects_non_scalar_attrs(self):
        meta = json.dumps({"type": "meta", "schema": SCHEMA_VERSION,
                           "span_count": 1, "counter_count": 0,
                           "histogram_count": 0})
        span = json.dumps({"type": "span", "id": 0, "parent": None,
                           "name": "x", "start": 0.0, "elapsed": 0.0,
                           "attrs": {"v": [1, 2]}})
        assert any("JSON scalar" in e
                   for e in validate_trace_lines([meta, span]))

    def test_validator_rejects_count_mismatch(self):
        meta = json.dumps({"type": "meta", "schema": SCHEMA_VERSION,
                           "span_count": 3, "counter_count": 0,
                           "histogram_count": 0})
        assert any("declares 3 span" in e
                   for e in validate_trace_lines([meta]))

    def test_validate_file_raises_with_preview(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"meta","schema":"nope"}\n')
        with pytest.raises(ValueError, match="invalid trace"):
            validate_trace_file(str(path))

    def test_render_tree_nests_and_shows_counters(self):
        text = render_tree(self._traced())
        lines = text.splitlines()
        assert lines[0].startswith("solve (n=4)")
        assert lines[1].startswith("  ego (v=0)")
        assert "counters: nodes=3" in lines[-1]

    def test_render_tree_elides_long_sibling_runs(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("sweep"):
            for v in range(50):
                with tracer.span("ego", v=v):
                    pass
        text = render_tree(tracer, max_children=40)
        assert "... 10 more spans" in text
        assert text.count("ego") == 40

    def test_span_time_coverage(self):
        records = [
            {"id": 0, "parent": None, "name": "sweep", "start": 0.0,
             "elapsed": 10.0, "attrs": {}},
            {"id": 1, "parent": 0, "name": "ego", "start": 0.0,
             "elapsed": 6.0, "attrs": {}},
            {"id": 2, "parent": 0, "name": "ego", "start": 6.0,
             "elapsed": 3.0, "attrs": {}},
            {"id": 3, "parent": None, "name": "ego", "start": 9.0,
             "elapsed": 5.0, "attrs": {}},  # orphan: not under sweep
        ]
        assert span_time_coverage(records, "sweep", "ego") == \
            pytest.approx(0.9)
        assert span_time_coverage([], "sweep", "ego") == 1.0


class CountingSpan(tracer_module.Span):
    """Span subclass that counts constructions (the allocation guard)."""

    allocations = 0

    def __init__(self, tracer, name, attrs):
        CountingSpan.allocations += 1
        super().__init__(tracer, name, attrs)


@pytest.fixture
def counting_spans(monkeypatch):
    """Route every ``Tracer.span`` allocation through CountingSpan."""
    CountingSpan.allocations = 0
    monkeypatch.setattr(tracer_module, "Span", CountingSpan)
    return CountingSpan


class TestDisabledPathAllocations:
    def test_untraced_solve_allocates_zero_spans(
            self, counting_spans, toy_figure2):
        for engine in ("set", "bitset"):
            result = mbc_star(toy_figure2, 2, engine=engine)
            assert result.size == 6
        assert counting_spans.allocations == 0

    def test_traced_solve_does_allocate(
            self, counting_spans, toy_figure2):
        # The counterpart proving the monkeypatched guard actually
        # observes the live path.
        mbc_star(toy_figure2, 2, trace=get_tracer(True))
        assert counting_spans.allocations > 0

    def test_null_singletons_shared(self):
        assert get_tracer(False).span("x") is NULL_SPAN
        assert isinstance(get_tracer(False), NullTracer)


def sweeping_graph():
    """A random graph dense enough that MBC* reaches the ego sweep
    (on the toy fixtures the heuristic already proves optimality and
    the pipeline exits before any ego network is built)."""
    import random

    from repro.signed.graph import SignedGraph

    rng = random.Random(0)
    n = rng.randint(10, 20)
    graph = SignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.5:
                graph.add_edge(u, v, -1 if rng.random() < 0.5 else 1)
    return graph


class TestSolverTraces:
    def _spans(self, tracer):
        return [r["name"] for r in tracer.records]

    def test_mbc_star_span_taxonomy(self, toy_figure2):
        tracer = get_tracer(True)
        result = mbc_star(toy_figure2, 2, trace=tracer)
        assert result.size == 6
        names = self._spans(tracer)
        assert names.count("mbc_star") == 1
        for phase in ("vertex_reduction", "heuristic"):
            assert phase in names
        root = [r for r in tracer.records if r["name"] == "mbc_star"][0]
        assert root["parent"] is None
        assert root["attrs"]["size"] == 6
        assert root["attrs"]["tau"] == 2

    def test_mbc_star_sweep_and_ego_spans(self):
        graph = sweeping_graph()
        tracer = get_tracer(True)
        mbc_star(graph, 1, trace=tracer)
        names = self._spans(tracer)
        assert "sweep" in names
        assert "ego" in names
        sweep_ids = {r["id"] for r in tracer.records
                     if r["name"] == "sweep"}
        for record in tracer.records:
            if record["name"] == "ego":
                assert record["parent"] in sweep_ids

    def test_trace_never_perturbs_result(self, toy_figure2):
        for engine in ("set", "bitset"):
            plain = mbc_star(toy_figure2, 2, engine=engine)
            traced = mbc_star(toy_figure2, 2, engine=engine,
                              trace=get_tracer(True))
            assert traced.vertices == plain.vertices

    def test_ambient_tracer_captures_without_trace_kwarg(
            self, toy_figure2):
        tracer = get_tracer(True)
        previous = install_tracer(tracer)
        try:
            mbc_star(toy_figure2, 2)
        finally:
            install_tracer(previous)
        assert "mbc_star" in self._spans(tracer)

    def test_explicit_trace_overrides_ambient(self, toy_figure2):
        ambient = get_tracer(True)
        explicit = get_tracer(True)
        previous = install_tracer(ambient)
        try:
            mbc_star(toy_figure2, 2, trace=explicit)
        finally:
            install_tracer(previous)
        assert "mbc_star" in self._spans(explicit)
        assert "mbc_star" not in self._spans(ambient)

    def test_pf_star_trace_records_beta(self, toy_figure2):
        tracer = get_tracer(True)
        beta = pf_star(toy_figure2, trace=tracer)
        root = [r for r in tracer.records if r["name"] == "pf_star"][0]
        assert root["attrs"]["beta"] == beta == 2

    def test_parallel_solve_merges_worker_spans(self):
        graph = sweeping_graph()
        serial = mbc_star(graph, 1, engine="bitset")
        tracer = get_tracer(True)
        result = mbc_star(graph, 1, engine="bitset", parallel=2,
                          trace=tracer)
        assert result.size == serial.size
        names = self._spans(tracer)
        assert "fanout" in names
        assert "chunk" in names
        chunk_parents = {r["parent"] for r in tracer.records
                         if r["name"] == "chunk"}
        fanout_ids = {r["id"] for r in tracer.records
                      if r["name"] == "fanout"}
        assert chunk_parents <= fanout_ids

    def test_trace_is_schema_valid_jsonl(self, toy_figure2, tmp_path):
        tracer = get_tracer(True)
        mbc_star(toy_figure2, 2, trace=tracer)
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(tracer, path)
        assert validate_trace_file(path) == len(tracer.records)


class TestCliTracing:
    def test_trace_flag_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "out.jsonl")
        assert main(["mbc-star", "dataset:bitcoin", "--tau", "2",
                     "--trace", path]) == 0
        out = capsys.readouterr().out
        assert f"trace: {path}" in out
        assert validate_trace_file(path) > 0

    def test_profile_flag_prints_tree(self, capsys):
        from repro.cli import main

        assert main(["mbc", "dataset:bitcoin", "--tau", "2",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "mbc_star" in out
        assert "sweep" in out

    def test_aliases_resolve(self, capsys):
        from repro.cli import build_parser, main

        for alias in ("mbc-star", "pf-star", "gmbc-star"):
            args = build_parser().parse_args([alias, "g.txt"])
            assert args.command == alias
        assert main(["pf-star", "dataset:bitcoin"]) == 0
        assert "beta(G)" in capsys.readouterr().out

    def test_cli_restores_ambient_tracer(self, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "out.jsonl")
        main(["mbc", "dataset:bitcoin", "--tau", "2", "--trace", path])
        assert current_tracer() is NULL_TRACER


class TestAcceptance:
    def test_ego_spans_cover_sweep_time(self):
        """The ISSUE's acceptance metric on a bundled dataset: per-ego
        spans must account for >= 90% of the serial sweep's wall time
        (the trace may not hide where the sweep's time goes)."""
        tracer = get_tracer(True)
        graph = load("douban")
        result = mbc_star(graph, 3, trace=tracer)
        assert not result.is_empty
        coverage = span_time_coverage(tracer.records, "sweep", "ego")
        assert coverage >= 0.9
