"""Tests for the parallel ego-network fan-out engine.

Three layers:

* the planning primitives (task lists, cost ordering, viability bound,
  chunking, suffix masks) against the serial sweep's accumulation;
* the plumbing (shared incumbent semantics, byte-blob mask round-trip,
  worker-context pack/unpack for spawn pools);
* end-to-end equivalence of the fan-out engines against the serial
  sweeps, through the in-process fallback, a real ``fork`` pool
  (``MIN_POOL_TASKS`` monkeypatched to 0 so small graphs still
  dispatch) and a forced ``spawn`` pool.
"""

import multiprocessing
import random

import pytest

from repro.core.gmbc import gmbc_star
from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star
from repro.core.result import BalancedClique
from repro.core.stats import SearchStats
from repro.kernels.bitset import mask_of, mask_stride, masks_from_bytes, \
    masks_to_bytes
from repro.parallel import dispatch as dispatch_module
from repro.parallel import engine as engine_module
from repro.parallel.engine import resolve_workers
from repro.parallel.incumbent import SharedIncumbent
from repro.parallel.tasks import EgoTask, chunk_vertices, cost_ordered, \
    is_viable, plan_tasks, suffix_masks
from repro.parallel.worker import WorkerContext
from repro.signed.graph import SignedGraph


def random_signed_graph(seed: int, n: int = 40,
                        density: float = 0.3) -> SignedGraph:
    rng = random.Random(seed)
    graph = SignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                graph.add_edge(u, v, 1 if rng.random() < 0.6 else -1)
    return graph


def assert_valid(clique: BalancedClique, graph: SignedGraph, tau: int):
    if clique.is_empty:
        return
    rebuilt = BalancedClique.from_vertices(graph, clique.vertices)
    assert rebuilt.size == clique.size
    assert clique.satisfies(tau)


@pytest.fixture
def pool_always(monkeypatch):
    """Force the pool path even for tiny task lists."""
    monkeypatch.setattr(engine_module, "MIN_POOL_TASKS", 0)
    monkeypatch.setattr(engine_module, "MIN_POOL_WORK", 0)


class TestTaskPlanning:
    def test_plan_matches_serial_accumulation(self):
        graph = random_signed_graph(3, n=20)
        pos = graph.pos_adjacency_bits()
        neg = graph.neg_adjacency_bits()
        order = list(range(20))
        random.Random(7).shuffle(order)
        tasks = plan_tasks(pos, neg, order)
        assert [t.u for t in tasks] == list(reversed(order))
        # Reproduce the serial reverse sweep's mask accumulation.
        allowed = 0
        by_u = {t.u: t for t in tasks}
        for u in reversed(order):
            task = by_u[u]
            assert task.allowed_mask == allowed
            assert task.pos_count == (pos[u] & allowed).bit_count()
            assert task.neg_count == (neg[u] & allowed).bit_count()
            allowed |= 1 << u

    def test_suffix_masks_match_plan(self):
        order = [4, 1, 3, 0, 2]
        masks = suffix_masks(order)
        for position, u in enumerate(order):
            assert masks[u] == mask_of(order[position + 1:])

    def test_cost_ordered_deterministic(self):
        tasks = [EgoTask(u, 0, u % 3, (u * 7) % 4) for u in range(12)]
        ordered = cost_ordered(tasks)
        costs = [t.cost for t in ordered]
        assert costs == sorted(costs, reverse=True)
        # Ties broken by vertex id: stable across runs.
        assert ordered == cost_ordered(list(reversed(tasks)))

    def test_is_viable_bounds(self):
        # required=6, tau=2: needs >= 5 candidates, >= 1 positive,
        # >= 2 negative.
        assert is_viable(EgoTask(0, 0, 2, 3), 6, 2)
        assert not is_viable(EgoTask(0, 0, 2, 2), 6, 2)   # too few total
        assert not is_viable(EgoTask(0, 0, 0, 5), 6, 2)   # no L side
        assert not is_viable(EgoTask(0, 0, 4, 1), 6, 2)   # no R side

    def test_chunk_vertices_partitions(self):
        vertices = list(range(100))
        chunks = chunk_vertices(vertices, 4)
        assert [v for chunk in chunks for v in chunk] == vertices
        assert all(chunks)
        assert chunk_vertices([], 4) == []
        assert chunk_vertices(vertices, 4, chunk_size=7) == \
            [vertices[i:i + 7] for i in range(0, 100, 7)]

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4


class TestSharedIncumbent:
    @pytest.mark.parametrize("ctx", [None, multiprocessing])
    def test_monotone_improve(self, ctx):
        incumbent = SharedIncumbent(5, ctx)
        assert incumbent.get() == 5
        assert incumbent.improve(7)
        assert incumbent.get() == 7
        assert not incumbent.improve(7)     # equal never "improves"
        assert not incumbent.improve(3)     # never decreases
        assert incumbent.get() == 7
        assert incumbent.shared == (ctx is not None)

    def test_from_value_shares_register(self):
        original = SharedIncumbent(2, multiprocessing)
        rewrapped = SharedIncumbent.from_value(original._value)
        assert rewrapped.get() == 2
        rewrapped.improve(9)
        assert original.get() == 9

    @pytest.mark.parametrize("ctx", [None, multiprocessing])
    def test_reset_drops_orphaned_publications(self, ctx):
        # Recovery-path escape hatch: the dispatcher resets to the
        # certified floor between a pool failure and the re-dispatch
        # (no live workers), abandoning monotonicity on purpose.
        incumbent = SharedIncumbent(3, ctx)
        incumbent.improve(9)
        incumbent.reset(3)
        assert incumbent.get() == 3
        assert incumbent.improve(4)


class TestMaskBlobs:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 64, 65])
    def test_round_trip(self, n):
        rng = random.Random(n)
        masks = [rng.getrandbits(n) for _ in range(n)]
        blob = masks_to_bytes(masks, n)
        assert len(blob) == mask_stride(n) * n
        assert masks_from_bytes(blob, n) == masks

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            masks_from_bytes(b"\x00", 3)

    def test_worker_context_pack_round_trip(self):
        graph = random_signed_graph(11, n=25)
        order = list(range(25))
        ctx = WorkerContext(
            graph.pos_adjacency_bits(), graph.neg_adjacency_bits(),
            25, 2, order, SharedIncumbent(4), use_core=False,
            use_coloring=True, want_stats=True)
        packed = ctx.pack()
        rebuilt = WorkerContext.unpack(packed, SharedIncumbent(4))
        assert rebuilt.pos_bits == ctx.pos_bits
        assert rebuilt.neg_bits == ctx.neg_bits
        assert (rebuilt.n, rebuilt.tau, rebuilt.order) == (25, 2, order)
        assert (rebuilt.use_core, rebuilt.use_coloring,
                rebuilt.want_stats) == (False, True, True)
        assert rebuilt.allowed(order[0]) == ctx.allowed(order[0])


class TestFanOutEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_mbc_in_process_fallback(self, seed):
        # Small graphs stay below MIN_POOL_TASKS: the plan runs
        # in-process but still through the fan-out code path.
        graph = random_signed_graph(seed, n=18)
        tau = seed % 3
        serial = mbc_star(graph, tau)
        fanned = mbc_star(graph, tau, parallel=2)
        assert serial.size == fanned.size
        assert_valid(fanned, graph, tau)

    @pytest.mark.parametrize("seed", [0, 4, 9])
    def test_mbc_with_real_pool(self, seed, pool_always):
        graph = random_signed_graph(seed, n=45)
        for tau in (1, 2):
            serial = mbc_star(graph, tau)
            fanned = mbc_star(graph, tau, parallel=3)
            assert serial.size == fanned.size
            assert_valid(fanned, graph, tau)

    @pytest.mark.parametrize("seed", [1, 6])
    def test_pf_with_real_pool(self, seed, pool_always):
        graph = random_signed_graph(seed, n=45)
        serial = pf_star(graph)
        fanned, witness = pf_star(graph, parallel=2,
                                  return_witness=True)
        assert serial == fanned
        assert_valid(witness, graph, 0)
        assert witness.polarization >= fanned

    @pytest.mark.parametrize("seed", [2, 8])
    def test_gmbc_profile(self, seed, pool_always):
        graph = random_signed_graph(seed, n=35)
        serial = gmbc_star(graph)
        fanned = gmbc_star(graph, parallel=2)
        assert [c.size for c in serial] == [c.size for c in fanned]
        for tau, clique in enumerate(fanned):
            assert_valid(clique, graph, tau)

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="platform lacks the spawn start method")
    def test_mbc_spawn_pool(self, pool_always, monkeypatch):
        monkeypatch.setattr(dispatch_module, "FORCE_START_METHOD", "spawn")
        graph = random_signed_graph(5, n=40)
        serial = mbc_star(graph, 2)
        fanned = mbc_star(graph, 2, parallel=2)
        assert serial.size == fanned.size
        assert_valid(fanned, graph, 2)

    def test_no_pool_platform_falls_back(self, pool_always, monkeypatch):
        monkeypatch.setattr(dispatch_module, "FORCE_START_METHOD", "none")
        graph = random_signed_graph(7, n=30)
        serial = mbc_star(graph, 1)
        fanned = mbc_star(graph, 1, parallel=4)
        assert serial.size == fanned.size

    def test_set_engine_rejected(self):
        graph = random_signed_graph(0, n=10)
        with pytest.raises(ValueError, match="serial-only"):
            mbc_star(graph, 1, engine="set", parallel=2)
        with pytest.raises(ValueError, match="serial-only"):
            pf_star(graph, engine="set", parallel=2)

    def test_check_only_stays_serial_and_agrees(self):
        graph = random_signed_graph(3, n=25)
        for tau in range(3):
            serial = mbc_star(graph, tau, check_only=True)
            fanned = mbc_star(graph, tau, check_only=True, parallel=4)
            assert serial.is_empty == fanned.is_empty

    @pytest.mark.parametrize("seed", [0, 5])
    def test_stats_aggregation(self, seed, pool_always):
        graph = random_signed_graph(seed, n=45)
        serial_stats = SearchStats()
        fan_stats = SearchStats()
        mbc_star(graph, 1, stats=serial_stats)
        mbc_star(graph, 1, parallel=2, stats=fan_stats)
        assert fan_stats.heuristic_size == serial_stats.heuristic_size
        # Every vertex of the ordering is planned as a task.
        assert fan_stats.vertices_examined == \
            serial_stats.vertices_examined
        # The shared incumbent can only prune more instances than the
        # serial sweep's (it also sees the pre-dispatch bound); it can
        # never launch instances the serial bar would have launched
        # against a tighter incumbent, so equality is not guaranteed —
        # but some work must be accounted whenever the serial sweep
        # launched any.
        if serial_stats.instances:
            assert fan_stats.nodes >= 0


class TestRegressions:
    def test_pf_round_fanout_tolerates_partial_pn_dict(self):
        # pn may arrive as a partial dict (only some vertices bounded);
        # a plain pn[u] used to KeyError on the unbounded ones.  The
        # default tau_star + 1 keeps them pending — pn only bounds, it
        # never filters, so the answer must still be exact.
        graph = random_signed_graph(21, n=20)
        expected = pf_star(graph)
        beta, witness = engine_module.pf_round_fanout(
            graph, list(range(graph.num_vertices)),
            list(range(graph.num_vertices)), {0: 99}, 0,
            BalancedClique(), workers=1)
        assert beta == expected
        if beta > 0:
            assert witness.satisfies(beta)

    def test_pf_round_fanout_accepts_dense_pn_list(self):
        # The production caller (PDecompose) passes pn as a dense list.
        graph = random_signed_graph(22, n=20)
        expected = pf_star(graph)
        n = graph.num_vertices
        beta, _witness = engine_module.pf_round_fanout(
            graph, list(range(n)), list(range(n)), [n] * n, 0,
            BalancedClique(), workers=1)
        assert beta == expected

    def test_make_pool_swallows_bad_start_method(self, monkeypatch):
        # get_context raises ValueError for unknown methods; _make_pool
        # must treat that like any other pool-creation failure and let
        # the caller run in-process instead of crashing the solve.
        monkeypatch.setattr(dispatch_module, "FORCE_START_METHOD",
                            "bogus")
        assert dispatch_module._make_pool(2, None) is None
