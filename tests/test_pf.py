"""Tests for the polarization factor algorithms (PF-E, PF-BS, PF*)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force_polarization_factor
from repro.core.pf import pf_binary_search, pf_enumeration, pf_star
from repro.core.result import BalancedClique
from repro.core.stats import SearchStats
from repro.core.balance import is_balanced_clique
from repro.signed.graph import SignedGraph

from .conftest import make_random_signed_graph, signed_graphs


class TestPFEnumeration:
    def test_figure2(self, toy_figure2):
        assert pf_enumeration(toy_figure2) == 2

    def test_planted(self, balanced_six):
        assert pf_enumeration(balanced_six) == 3

    def test_all_positive(self, all_positive_clique):
        assert pf_enumeration(all_positive_clique) == 0

    def test_empty_graph(self):
        assert pf_enumeration(SignedGraph(0)) == 0

    def test_node_limit(self):
        graph = make_random_signed_graph(18, 0.4, 0.4, seed=4)
        with pytest.raises(RuntimeError):
            pf_enumeration(graph, node_limit=2)


class TestPFBinarySearch:
    def test_figure2(self, toy_figure2):
        assert pf_binary_search(toy_figure2) == 2

    def test_planted(self, balanced_six):
        assert pf_binary_search(balanced_six) == 3

    def test_all_positive(self, all_positive_clique):
        assert pf_binary_search(all_positive_clique) == 0

    def test_empty_graph(self):
        assert pf_binary_search(SignedGraph(0)) == 0


class TestPFStar:
    def test_figure2(self, toy_figure2):
        assert pf_star(toy_figure2) == 2

    def test_planted(self, balanced_six):
        assert pf_star(balanced_six) == 3

    def test_all_positive(self, all_positive_clique):
        assert pf_star(all_positive_clique) == 0

    def test_empty_graph(self):
        assert pf_star(SignedGraph(0)) == 0

    def test_degeneracy_ordering_variant(self, toy_figure2):
        assert pf_star(toy_figure2, ordering="degeneracy") == 2

    def test_unknown_ordering_rejected(self, toy_figure2):
        with pytest.raises(ValueError):
            pf_star(toy_figure2, ordering="bogus")

    def test_witness(self, balanced_six):
        beta, witness = pf_star(balanced_six, return_witness=True)
        assert beta == 3
        assert witness.polarization >= 3
        assert is_balanced_clique(balanced_six, witness.vertices, tau=3)

    def test_stats_recorded(self, toy_figure2):
        stats = SearchStats()
        pf_star(toy_figure2, stats=stats)
        assert stats.heuristic_size >= 0


class TestAgreement:
    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=120, deadline=None)
    def test_pf_star_matches_brute_force(self, graph):
        assert pf_star(graph) == brute_force_polarization_factor(graph)

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=60, deadline=None)
    def test_all_solvers_agree(self, graph):
        expected = brute_force_polarization_factor(graph)
        assert pf_enumeration(graph) == expected
        assert pf_binary_search(graph) == expected
        assert pf_star(graph) == expected
        assert pf_star(graph, ordering="degeneracy") == expected

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=60, deadline=None)
    def test_witness_achieves_beta(self, graph):
        beta, witness = pf_star(graph, return_witness=True)
        if beta == 0:
            return
        assert witness.polarization >= beta
        assert is_balanced_clique(graph, witness.vertices, tau=beta)

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_lemma4_chain(self, graph):
        """Lemma 4 (implicitly): beta can always be reached by a chain
        of +1 feasibility checks — so PF* with the degeneracy ordering
        must agree with PF* with the polarization ordering."""
        assert pf_star(graph) == pf_star(graph, ordering="degeneracy")
