"""Tests for the PolarSeeds-style local spectral baseline."""

import pytest

from repro.baselines.polarseeds import PolarizedCommunity, \
    good_seed_pairs, polar_seeds
from repro.datasets.registry import load
from repro.metrics.polarity import polarity
from repro.signed.graph import SignedGraph

from .conftest import make_random_signed_graph


class TestSeedPairs:
    def test_requires_negative_edge(self, balanced_six):
        pairs = good_seed_pairs(balanced_six, t=1, count=100)
        for u, v in pairs:
            assert balanced_six.sign(u, v) == -1
            assert balanced_six.pos_degree(u) > 1
            assert balanced_six.pos_degree(v) > 1

    def test_threshold_filters(self, balanced_six):
        assert good_seed_pairs(balanced_six, t=10) == []

    def test_count_cap(self):
        graph = load("bitcoin")
        pairs = good_seed_pairs(graph, t=2, count=5, seed=1)
        assert len(pairs) == 5

    def test_deterministic_sampling(self):
        graph = load("bitcoin")
        a = good_seed_pairs(graph, t=2, count=5, seed=1)
        b = good_seed_pairs(graph, t=2, count=5, seed=1)
        assert a == b


class TestPolarSeeds:
    def test_finds_planted_conflict(self, balanced_six):
        community = polar_seeds(balanced_six, 0, 3)
        assert isinstance(community, PolarizedCommunity)
        assert 0 in community.group1
        assert 3 in community.group2
        # The planted 3|3 conflict should dominate the sweep.
        assert community.score >= polarity(
            balanced_six, {0}, {3})

    def test_groups_disjoint(self, balanced_six):
        community = polar_seeds(balanced_six, 0, 3)
        assert not (community.group1 & community.group2)

    def test_size_property(self, balanced_six):
        community = polar_seeds(balanced_six, 0, 3)
        assert community.size == \
            len(community.group1) + len(community.group2)

    def test_max_subgraph_respected(self):
        graph = make_random_signed_graph(100, 0.1, 0.1, seed=6)
        pairs = [(u, v) for u, v, s in graph.edges() if s == -1]
        if not pairs:
            pytest.skip("no negative edge in sample")
        u, v = pairs[0]
        community = polar_seeds(graph, u, v, max_subgraph=10)
        assert community.size <= 10

    def test_isolated_seed_pair(self):
        graph = SignedGraph(3)
        graph.add_edge(0, 1, -1)
        community = polar_seeds(graph, 0, 1)
        assert community.group1 == {0}
        assert community.group2 == {1}

    def test_clique_beats_spectral_community(self):
        """The Figure 5 comparison in miniature: the maximum balanced
        clique's polarity is at least the spectral community's."""
        from repro.core.mbc_star import mbc_star

        graph = load("bitcoin")
        pairs = good_seed_pairs(graph, t=2, count=10, seed=2)
        clique = mbc_star(graph, 3)
        clique_score = polarity(graph, clique.left, clique.right)
        scores = [polar_seeds(graph, u, v).score for u, v in pairs]
        assert clique_score >= max(scores) * 0.8
