"""Randomized differential harness for the solver stack.

The strongest correctness statement the repo can make: on a seeded
family of ~200 small random signed graphs, the optimized solvers, the
enumeration baseline, and the exponential brute-force oracle must all
agree on every optimum — across every available kernel engine from the
backend registry (set, bitset, and numpy when installed), across
worker counts, and with tracing on or off (observability must never
perturb a result).

The seed family is shifted by ``REPRO_PROPERTY_SEED`` (default 0), so
CI runs the harness on disjoint seed windows without any test edit:

    REPRO_PROPERTY_SEED=1000 pytest tests/test_property.py

Every graph is small (n <= 10) so the brute-force oracle from
:mod:`repro.core.bruteforce` stays fast; the harness still covers the
full pipeline (reductions, heuristic, core pruning, ego sweeps)
because density and sign mix vary per seed.
"""

import os
import random

import pytest

from repro.core.bruteforce import (
    brute_force_maximum_balanced_clique,
    brute_force_polarization_factor,
)
from repro.core.mbc_baseline import mbc_baseline
from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star
from repro.core.result import BalancedClique
from repro.dynamic import DynamicSolver, apply_edit, random_edits
from repro.obs import get_tracer
from repro.signed.graph import SignedGraph
from repro.unsigned.graph import UnsignedGraph
from repro.unsigned.ordering import degeneracy_ordering

from .conftest import PARALLEL_ENGINES, SOLVER_ENGINES

#: Base of this run's seed window (CI varies it per matrix job).
BASE_SEED = int(os.environ.get("REPRO_PROPERTY_SEED", "0"))

#: Seeds exercised by the full differential sweep.
SWEEP = 200

#: Worker counts cost a process pool per solve, so they run on a
#: subsample of the sweep.
PARALLEL_SAMPLE = 10


def random_graph(seed: int) -> SignedGraph:
    """Small random signed graph; density and sign mix vary by seed."""
    rng = random.Random(seed)
    n = rng.randint(4, 10)
    density = rng.uniform(0.2, 0.9)
    negative_ratio = rng.uniform(0.1, 0.9)
    graph = SignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < density:
                sign = -1 if rng.random() < negative_ratio else 1
                graph.add_edge(u, v, sign)
    return graph


def assert_valid(clique: BalancedClique, graph: SignedGraph,
                 tau: int) -> None:
    if clique.is_empty:
        return
    rebuilt = BalancedClique.from_vertices(graph, clique.vertices)
    assert rebuilt.size == clique.size
    assert clique.satisfies(tau)


class TestMbcDifferential:
    @pytest.mark.parametrize(
        "seed", range(BASE_SEED, BASE_SEED + SWEEP))
    def test_solvers_agree_with_oracle(self, seed):
        graph = random_graph(seed)
        tau = seed % 3
        oracle = brute_force_maximum_balanced_clique(graph, tau)

        baseline = mbc_baseline(graph, tau)
        assert baseline.size == oracle.size
        assert_valid(baseline, graph, tau)

        for engine in SOLVER_ENGINES:
            for trace in (None, get_tracer(True)):
                result = mbc_star(graph, tau, engine=engine,
                                  trace=trace)
                assert result.size == oracle.size, (
                    f"seed={seed} tau={tau} engine={engine} "
                    f"traced={trace is not None}: "
                    f"{result.size} != oracle {oracle.size}")
                assert_valid(result, graph, tau)

    @pytest.mark.parametrize(
        "seed",
        range(BASE_SEED, BASE_SEED + SWEEP, SWEEP // PARALLEL_SAMPLE))
    def test_parallel_workers_agree(self, seed):
        graph = random_graph(seed)
        tau = seed % 3
        serial = mbc_star(graph, tau, engine="bitset")
        for engine in PARALLEL_ENGINES:
            for trace in (None, get_tracer(True)):
                fanned = mbc_star(graph, tau, engine=engine,
                                  parallel=2, trace=trace)
                assert fanned.size == serial.size, engine
                assert_valid(fanned, graph, tau)


class TestPfDifferential:
    @pytest.mark.parametrize(
        "seed", range(BASE_SEED, BASE_SEED + SWEEP, 4))
    def test_pf_star_matches_oracle(self, seed):
        graph = random_graph(seed)
        oracle = brute_force_polarization_factor(graph)
        for engine in SOLVER_ENGINES:
            for trace in (None, get_tracer(True)):
                assert pf_star(graph, engine=engine,
                               trace=trace) == oracle

    @pytest.mark.parametrize(
        "seed",
        range(BASE_SEED, BASE_SEED + SWEEP, SWEEP // PARALLEL_SAMPLE))
    def test_parallel_workers_agree(self, seed):
        graph = random_graph(seed)
        serial = pf_star(graph, engine="bitset")
        for engine in PARALLEL_ENGINES:
            assert pf_star(graph, engine=engine,
                           parallel=2) == serial, engine


class TestDeterminism:
    @pytest.mark.parametrize(
        "seed", range(BASE_SEED, BASE_SEED + SWEEP, 10))
    def test_repeated_solves_return_identical_cliques(self, seed):
        graph = random_graph(seed)
        tau = seed % 3
        for engine in SOLVER_ENGINES:
            first = mbc_star(graph, tau, engine=engine)
            second = mbc_star(graph, tau, engine=engine)
            assert first.vertices == second.vertices
            assert first.left == second.left
            assert first.right == second.right

    @pytest.mark.parametrize(
        "seed", range(BASE_SEED, BASE_SEED + SWEEP, 10))
    def test_tracing_returns_the_identical_clique(self, seed):
        """Tracing must not perturb the solve: not only the optimum
        size but the exact witness must match the untraced run."""
        graph = random_graph(seed)
        tau = seed % 3
        for engine in SOLVER_ENGINES:
            plain = mbc_star(graph, tau, engine=engine)
            traced = mbc_star(graph, tau, engine=engine,
                              trace=get_tracer(True))
            assert traced.vertices == plain.vertices

    @pytest.mark.parametrize(
        "seed", range(BASE_SEED, BASE_SEED + SWEEP, 10))
    def test_mask_engines_return_identical_cliques(self, seed):
        """bitset and numpy share every tie-break (lowest vertex id),
        so at the same worker count they must return the *same
        witness*, not just the same size.  (The parallel sweep plans
        tasks in cost order, so a fan-out witness may legitimately
        differ from the serial one — the comparison is per cell.)"""
        graph = random_graph(seed)
        tau = seed % 3
        for workers in (1, 2):
            reference = mbc_star(graph, tau, engine="bitset",
                                 parallel=workers)
            for engine in PARALLEL_ENGINES:
                result = mbc_star(graph, tau, engine=engine,
                                  parallel=workers)
                assert result.vertices == reference.vertices, (
                    f"seed={seed} engine={engine} workers={workers}")


class TestOrderingRegression:
    """Pinned degeneracy-ordering behaviour.

    The property harness above found no determinism bug in the solver
    stack, so per the issue this pins the subtlest ordering the sweep
    depends on: bucket-queue degeneracy peeling with deterministic
    tie-breaks (insertion order within a degree bucket).
    """

    def test_peeling_order_on_degenerate_ties(self):
        # 0-1-2 path plus an isolated vertex 3 and a triangle 4-5-6:
        # all ties must break by vertex id / insertion order, pinned.
        graph = UnsignedGraph(7)
        for u, v in [(0, 1), (1, 2), (4, 5), (4, 6), (5, 6)]:
            graph.add_edge(u, v)
        assert degeneracy_ordering(graph) == [3, 0, 2, 1, 4, 5, 6]

    def test_order_is_a_permutation_and_stable(self):
        rng = random.Random(BASE_SEED + 7)
        graph = UnsignedGraph(12)
        for u in range(12):
            for v in range(u + 1, 12):
                if rng.random() < 0.4:
                    graph.add_edge(u, v)
        order = degeneracy_ordering(graph)
        assert sorted(order) == list(range(12))
        assert order == degeneracy_ordering(graph)

    def test_empty_graph(self):
        assert degeneracy_ordering(UnsignedGraph(0)) == []
        assert degeneracy_ordering(UnsignedGraph(3)) == [0, 1, 2]


class TestDynamicDifferential:
    """Seeded random edit scripts against the incremental solver.

    After *every* edit the dynamic solver's cached-bound answer must
    equal a from-scratch full solve of the live graph — optimum size,
    witness validity, and ``beta(G)`` — across every engine, and at
    ``workers = 2`` on a subsample.  This is the streaming analogue of
    the static differential sweep above, and the direct check that
    dirty-ego invalidation never reuses a stale certified bound.
    """

    EDITS = 10

    def _check_step(self, solver: DynamicSolver, engine: str,
                    context: str) -> None:
        graph = solver.graph
        result = solver.solve()
        full = mbc_star(graph, solver.tau, engine=engine)
        assert result.clique.size == full.size, (
            f"{context}: incremental {result.clique.size} "
            f"!= full {full.size}")
        assert result.optimal
        assert_valid(result.clique, graph, solver.tau)
        assert solver.beta() == pf_star(graph, engine=engine), (
            f"{context}: beta mismatch")

    def _run_script(self, seed: int, engine: str,
                    workers: int) -> None:
        graph = random_graph(seed)
        tau = max(1, seed % 3)
        solver = DynamicSolver(graph, tau, engine=engine,
                               parallel=workers)
        context = f"seed={seed} engine={engine} workers={workers}"
        self._check_step(solver, engine, f"{context} step=0")
        for step, edit in enumerate(
                random_edits(graph, self.EDITS, seed=seed + 1),
                start=1):
            apply_edit(solver, edit)
            self._check_step(
                solver, engine,
                f"{context} step={step} edit={edit.as_line()!r}")

    @pytest.mark.parametrize(
        "seed", range(BASE_SEED, BASE_SEED + SWEEP, SWEEP // 20))
    def test_edit_scripts_match_full_resolve(self, seed):
        for engine in SOLVER_ENGINES:
            self._run_script(seed, engine, workers=1)

    @pytest.mark.parametrize(
        "seed",
        range(BASE_SEED, BASE_SEED + SWEEP, SWEEP // PARALLEL_SAMPLE))
    def test_edit_scripts_match_under_fanout(self, seed):
        for engine in PARALLEL_ENGINES:
            self._run_script(seed, engine, workers=2)


class TestServeDifferential:
    """Served answers must equal direct in-process solves.

    For a seeded family of random graphs, every answer the HTTP
    daemon returns — a cold solve, a cache hit, and a post-edit solve
    against a registered resident graph — is compared against the
    corresponding direct library call, across every available engine
    and all three problems.  This is the proof that the serving layer
    (wire codec, cache keying, coalescing, resident solvers) is a
    transport, not a second solver.
    """

    EDITS = 6

    @pytest.fixture(scope="class")
    def server(self):
        from repro.serve import BackgroundServer, SolverService

        with BackgroundServer(SolverService()) as running:
            yield running

    def _solve(self, server, payload: dict) -> dict:
        from .test_serve import post

        status, body = post(server, "/solve", payload)
        assert status == 200, body
        assert body["status"] == "optimal"
        return body

    def _check_problems(self, server, spec, graph: SignedGraph,
                        tau: int, engine: str, context: str) -> None:
        from repro.core.gmbc import gmbc_star
        from repro.core.result import SolveResult

        body = self._solve(server, {
            "graph": spec, "problem": "mbc", "tau": tau,
            "engine": engine})
        served = SolveResult.from_json(body["result"])
        direct = mbc_star(graph, tau, engine=engine)
        assert served.clique.size == direct.size, context
        assert_valid(served.clique, graph, tau)

        body = self._solve(server, {
            "graph": spec, "problem": "pf", "engine": engine})
        assert body["beta"] == pf_star(graph, engine=engine), context
        witness = SolveResult.from_json(body["result"]).clique
        # Every pf path — direct, cached, resident — must back the
        # bound with a witness achieving it (empty only at beta 0).
        assert witness.polarization == body["beta"], context
        if not witness.is_empty:
            assert_valid(witness, graph, 0)

        body = self._solve(server, {
            "graph": spec, "problem": "gmbc", "engine": engine})
        direct_sweep = gmbc_star(graph, engine=engine)
        assert len(body["result"]["cliques"]) == len(direct_sweep), \
            context
        for sweep_tau, (payload, clique) in enumerate(
                zip(body["result"]["cliques"], direct_sweep)):
            assert BalancedClique.from_json(payload).size == \
                clique.size, f"{context} tau={sweep_tau}"

    @pytest.mark.parametrize(
        "seed", range(BASE_SEED, BASE_SEED + SWEEP, SWEEP // 10))
    def test_cold_and_cached_answers_match_direct(self, server, seed):
        from repro.serve.protocol import graph_from_inline

        from .test_serve import edges_of, post

        tau = seed % 3
        spec = {"edges": edges_of(random_graph(seed))}
        # The serve daemon parses inline edges through read_edge_list,
        # which ids vertices by first appearance — the in-process
        # reference must be the graph parsed the same way, not the
        # pre-serialisation original.
        graph = graph_from_inline(spec)
        for engine in SOLVER_ENGINES:
            post(server, "/cache/clear", {})
            self._check_problems(
                server, spec, graph, tau, engine,
                f"seed={seed} engine={engine} cold")
            # Second pass answers from the cache; must be identical.
            self._check_problems(
                server, spec, graph, tau, engine,
                f"seed={seed} engine={engine} cached")

    @pytest.mark.parametrize(
        "seed", range(BASE_SEED, BASE_SEED + SWEEP, SWEEP // 10))
    def test_post_edit_answers_match_direct(self, server, seed):
        from repro.serve.protocol import graph_from_inline

        from .test_serve import edges_of, post

        tau = max(1, seed % 3)
        spec = {"edges": edges_of(random_graph(seed))}
        name = f"diff-{seed}"
        status, _ = post(server, "/graphs", {
            "name": name, "graph": spec, "tau": tau})
        assert status == 200
        # Mirror the server's resident graph locally, parsing the
        # inline spelling the same way the server does (vertex ids
        # are assigned by first appearance); random_edits draws each
        # edit against the *current* state, so apply as we collect.
        mirror = DynamicSolver(graph_from_inline(spec), tau)
        lines = []
        for edit in random_edits(mirror.graph, self.EDITS,
                                 seed=seed + 1):
            apply_edit(mirror, edit)
            lines.append(edit.as_line())
        status, body = post(server, f"/graphs/{name}/edits", {
            "edits": lines})
        assert status == 200, body
        assert body["applied"] == len(lines)
        assert body["fingerprint"] == mirror.graph.fingerprint()
        for engine in SOLVER_ENGINES:
            self._check_problems(
                server, f"graph:{name}", mirror.graph, tau, engine,
                f"seed={seed} engine={engine} post-edit")
