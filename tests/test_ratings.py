"""Tests for the rating-network → signed-graph conversion."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.signed.ratings import RatingTable, random_rating_table, \
    ratings_to_signed_graph


class TestRatingTable:
    def test_rate_and_read(self):
        table = RatingTable(2, 3)
        table.rate(0, 1, 4.0)
        assert table.item_ratings(1) == {0: 4.0}
        assert table.num_ratings == 1

    def test_rate_overwrites(self):
        table = RatingTable(1, 1)
        table.rate(0, 0, 1.0)
        table.rate(0, 0, 5.0)
        assert table.item_ratings(0) == {0: 5.0}
        assert table.num_ratings == 1

    def test_bounds_checked(self):
        table = RatingTable(1, 1)
        with pytest.raises(ValueError):
            table.rate(1, 0, 3.0)
        with pytest.raises(ValueError):
            table.rate(0, 1, 3.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            RatingTable(-1, 2)


class TestConversion:
    def test_close_ratings_make_positive_edge(self):
        table = RatingTable(2, 2)
        table.rate(0, 0, 5.0)
        table.rate(1, 0, 5.0)
        table.rate(0, 1, 4.0)
        table.rate(1, 1, 4.5)
        graph = ratings_to_signed_graph(table, min_agreements=2)
        assert graph.sign(0, 1) == 1

    def test_opposite_ratings_make_negative_edge(self):
        table = RatingTable(2, 2)
        table.rate(0, 0, 5.0)
        table.rate(1, 0, 1.0)
        table.rate(0, 1, 5.0)
        table.rate(1, 1, 1.0)
        graph = ratings_to_signed_graph(table, min_agreements=2)
        assert graph.sign(0, 1) == -1

    def test_insufficient_agreements_no_edge(self):
        table = RatingTable(2, 2)
        table.rate(0, 0, 5.0)
        table.rate(1, 0, 5.0)
        graph = ratings_to_signed_graph(table, min_agreements=2)
        assert graph.sign(0, 1) is None

    def test_mixed_signals_cancel(self):
        table = RatingTable(2, 4)
        for item, (a, b) in enumerate(
                [(5.0, 5.0), (5.0, 4.5), (1.0, 5.0), (5.0, 1.0)]):
            table.rate(0, item, a)
            table.rate(1, item, b)
        graph = ratings_to_signed_graph(table, min_agreements=2)
        assert graph.sign(0, 1) is None  # 2 close vs 2 opposite: tie

    def test_middling_gaps_ignored(self):
        table = RatingTable(2, 2)
        table.rate(0, 0, 3.0)
        table.rate(1, 0, 4.5)  # gap 1.5: neither close nor opposite
        table.rate(0, 1, 3.0)
        table.rate(1, 1, 4.5)
        graph = ratings_to_signed_graph(table)
        assert graph.num_edges == 0


class TestRandomTable:
    def test_taste_groups_polarize(self):
        table = random_rating_table(
            20, 40, ratings_per_user=20, taste_groups=2, noise=0.0,
            seed=1)
        graph = ratings_to_signed_graph(table)
        same = [(u, v, s) for u, v, s in graph.edges()
                if (u % 2) == (v % 2)]
        cross = [(u, v, s) for u, v, s in graph.edges()
                 if (u % 2) != (v % 2)]
        assert same and all(s == 1 for _, _, s in same)
        assert cross and all(s == -1 for _, _, s in cross)

    def test_deterministic(self):
        a = random_rating_table(10, 20, 5, seed=3)
        b = random_rating_table(10, 20, 5, seed=3)
        for item in range(20):
            assert a.item_ratings(item) == b.item_ratings(item)

    def test_requires_group(self):
        with pytest.raises(ValueError):
            random_rating_table(5, 5, 2, taste_groups=0)

    def test_result_graph_validates(self):
        table = random_rating_table(15, 30, 10, noise=0.3, seed=4)
        ratings_to_signed_graph(table).validate()


_HASHSEED_SNIPPET = """\
from repro.signed.ratings import random_rating_table, \\
    ratings_to_signed_graph

table = random_rating_table(20, 40, ratings_per_user=15, noise=0.2,
                            seed=7)
graph = ratings_to_signed_graph(table)
for edge in graph.edges():
    print(*edge)
"""


class TestHashSeedIndependence:
    """The converter's output must not depend on PYTHONHASHSEED.

    The conversion iterates the union of the close/opposite pair sets
    to insert edges; before the ``sorted()`` fix (R002) that union's
    iteration order — and therefore the edge *insertion* order seen by
    everything downstream — varied with hash randomisation.  Each
    child process here gets a different fixed seed, so any regression
    shows up as diverging edge streams.
    """

    def _edges_under_seed(self, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        src = Path(__file__).resolve().parents[1] / "src"
        env["PYTHONPATH"] = str(src)
        result = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SNIPPET],
            env=env, capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_edge_stream_identical_across_hash_seeds(self):
        baseline = self._edges_under_seed("0")
        assert baseline.strip(), "converter produced no edges"
        for hashseed in ("1", "42"):
            assert self._edges_under_seed(hashseed) == baseline

    def test_edges_inserted_in_sorted_pair_order(self, monkeypatch):
        # Int-tuple hashing is not seed-randomised, so the subprocess
        # check above cannot see a dropped sorted() by itself; this
        # pins the canonical insertion order directly by recording the
        # add_edge calls the conversion makes.
        from repro.signed.graph import SignedGraph

        calls = []

        class Recorder(SignedGraph):
            def add_edge(self, u, v, sign):
                calls.append((u, v))
                super().add_edge(u, v, sign)

        monkeypatch.setattr("repro.signed.ratings.SignedGraph",
                            Recorder)
        table = random_rating_table(20, 40, ratings_per_user=15,
                                    noise=0.2, seed=7)
        ratings_to_signed_graph(table)
        assert calls, "converter produced no edges"
        assert calls == sorted(calls)
