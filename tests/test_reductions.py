"""Tests for VertexReduction, EdgeReduction, polar cores, PDecompose."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import enumerate_balanced_cliques
from repro.core.reductions import edge_reduction, polar_core_numbers, \
    polar_core_vertices, polarization_order, polarization_upper_bound, \
    vertex_reduction
from repro.signed.graph import SignedGraph

from .conftest import make_random_signed_graph, signed_graphs


class TestVertexReduction:
    def test_tau_zero_keeps_all(self, toy_figure2):
        assert vertex_reduction(toy_figure2, 0) == set(range(8))

    def test_removes_low_degree(self, balanced_six):
        # Vertices 6 and 7 hang off the clique with a single edge.
        survivors = vertex_reduction(balanced_six, 3)
        assert survivors == {0, 1, 2, 3, 4, 5}

    def test_cascades(self):
        # A chain of marginal vertices collapses entirely.
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 1)], negative_edges=[(1, 2), (2, 3)])
        assert vertex_reduction(graph, 2) == set()

    def test_keeps_qualifying_clique(self, balanced_six):
        survivors = vertex_reduction(balanced_six, 3)
        assert {0, 1, 2, 3, 4, 5} <= survivors

    @given(signed_graphs(max_vertices=9),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_never_removes_clique_members(self, graph, tau):
        """Safety: no vertex of any balanced clique satisfying tau is
        ever peeled."""
        survivors = vertex_reduction(graph, tau)
        for clique in enumerate_balanced_cliques(graph, tau):
            assert set(clique.vertices) <= survivors

    @given(signed_graphs(max_vertices=9),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_survivor_degrees(self, graph, tau):
        """Survivors meet the degree thresholds within the survivor
        set."""
        survivors = vertex_reduction(graph, tau)
        for v in survivors:
            assert len(graph.pos_neighbors(v) & survivors) >= tau - 1
            assert len(graph.neg_neighbors(v) & survivors) >= tau


class TestEdgeReduction:
    def test_tau_zero_no_change(self, toy_figure2):
        reduced = edge_reduction(toy_figure2, 0)
        assert sorted(reduced.edges()) == sorted(toy_figure2.edges())

    def test_input_untouched(self, toy_figure2):
        before = sorted(toy_figure2.edges())
        edge_reduction(toy_figure2, 3)
        assert sorted(toy_figure2.edges()) == before

    def test_keeps_planted_clique(self, balanced_six):
        reduced = edge_reduction(balanced_six, 3)
        for u in range(6):
            for v in range(u + 1, 6):
                assert reduced.has_edge(u, v)

    def test_removes_stray_edges(self, balanced_six):
        # (6, 0) and (7, 3) are in no triangle at all.
        reduced = edge_reduction(balanced_six, 3)
        assert not reduced.has_edge(6, 0)
        assert not reduced.has_edge(7, 3)

    @given(signed_graphs(max_vertices=9),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_never_removes_clique_edges(self, graph, tau):
        """Safety: every edge of a balanced clique satisfying tau
        survives."""
        reduced = edge_reduction(graph, tau)
        import itertools

        for clique in enumerate_balanced_cliques(graph, tau):
            for u, v in itertools.combinations(clique.vertices, 2):
                assert reduced.has_edge(u, v), (
                    f"edge ({u}, {v}) of {sorted(clique.vertices)} "
                    f"removed at tau={tau}")

    def test_fixpoint(self):
        graph = make_random_signed_graph(20, 0.3, 0.2, seed=5)
        once = edge_reduction(graph, 2)
        twice = edge_reduction(once, 2)
        assert sorted(once.edges()) == sorted(twice.edges())


class TestPolarCore:
    def test_pn_values_on_balanced_clique(self, balanced_six):
        _order, pn = polar_core_numbers(balanced_six)
        # Clique members: min(d+ + 1, d-) = min(3, 3) = 3.
        for v in range(6):
            assert pn[v] == 3

    def test_order_is_permutation(self, toy_figure2):
        order = polarization_order(toy_figure2)
        assert sorted(order) == list(range(8))

    def test_pn_non_decreasing_along_order(self, toy_figure2):
        order, pn = polar_core_numbers(toy_figure2)
        values = [pn[v] for v in order]
        assert values == sorted(values)

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=60, deadline=None)
    def test_pn_matches_direct_peeling(self, graph):
        """pn(u) >= k iff u is in the k-polar-core (Definition 3)."""
        _order, pn = polar_core_numbers(graph)
        top = max(pn, default=0)
        for k in range(0, top + 2):
            expected = polar_core_vertices(graph, k)
            assert {v for v in graph.vertices()
                    if pn[v] >= k} == expected

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=40, deadline=None)
    def test_polar_core_degree_property(self, graph):
        for k in range(1, 4):
            survivors = polar_core_vertices(graph, k)
            for v in survivors:
                pos = len(graph.pos_neighbors(v) & survivors)
                neg = len(graph.neg_neighbors(v) & survivors)
                assert min(pos + 1, neg) >= k

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_lemma5_pn_bounds_gamma(self, graph):
        """Lemma 5: pn(u) upper-bounds the best polarization of any
        balanced clique containing u (for any ordering, so in
        particular for the whole-neighbourhood one)."""
        _order, pn = polar_core_numbers(graph)
        for clique in enumerate_balanced_cliques(graph):
            for u in clique.vertices:
                assert pn[u] >= clique.polarization


class TestPolarizationUpperBound:
    def test_empty_graph(self):
        assert polarization_upper_bound(SignedGraph(0)) == 0

    def test_balanced_clique(self, balanced_six):
        assert polarization_upper_bound(balanced_six) >= 3

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_bounds_beta(self, graph):
        from repro.core.bruteforce import brute_force_polarization_factor

        assert polarization_upper_bound(graph) >= \
            brute_force_polarization_factor(graph)
