"""Tests for the related-work solvers: trusted cliques, (alpha, k)-
cliques, the eigensign balanced-subgraph heuristic, and the
recolouring bound."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.balanced_subgraph import eigensign_balanced_subgraph
from repro.core.related import is_alpha_k_clique, \
    maximum_alpha_k_clique, maximum_trusted_clique
from repro.signed.balance import is_structurally_balanced
from repro.signed.generators import plant_balanced_clique
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph
from repro.unsigned.clique import maximum_clique_size
from repro.unsigned.coloring import coloring_upper_bound
from repro.unsigned.recolor import recolor, recoloring_upper_bound

from .conftest import make_random_signed_graph, signed_graphs
from .test_unsigned import unsigned_graphs


class TestTrustedClique:
    def test_positive_clique_found(self, all_positive_clique):
        assert maximum_trusted_clique(all_positive_clique) == set(range(5))

    def test_ignores_negative_edges(self, balanced_six):
        clique = maximum_trusted_clique(balanced_six)
        # Each side of the balanced clique is an all-positive triangle.
        assert len(clique) == 3

    def test_empty_graph(self):
        assert maximum_trusted_clique(SignedGraph(0)) == set()

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=40, deadline=None)
    def test_matches_positive_subgraph_oracle(self, graph):
        """Trusted clique == max clique of the positive subgraph, the
        reduction the paper states."""
        found = maximum_trusted_clique(graph)
        # Verify all-positive clique-ness.
        for u, v in itertools.combinations(found, 2):
            assert graph.sign(u, v) == 1
        # Compare size against exhaustive search over positive cliques.
        best = 0
        vertices = list(graph.vertices())
        for size in range(1, len(vertices) + 1):
            for combo in itertools.combinations(vertices, size):
                if all(graph.sign(a, b) == 1
                       for a, b in itertools.combinations(combo, 2)):
                    best = max(best, size)
        assert len(found) == best


def oracle_alpha_k(graph: SignedGraph, alpha: float, k: int) -> int:
    best = 0
    vertices = list(graph.vertices())
    for size in range(1, len(vertices) + 1):
        for combo in itertools.combinations(vertices, size):
            if is_alpha_k_clique(graph, set(combo), alpha, k):
                best = max(best, size)
    return best


class TestAlphaKClique:
    def test_is_alpha_k_on_balanced_clique(self, balanced_six):
        # Sides of 3: each member has 3 negative and 2 positive inside.
        members = set(range(6))
        assert is_alpha_k_clique(balanced_six, members, alpha=0.5,
                                 k=3)
        assert not is_alpha_k_clique(balanced_six, members, alpha=1.5,
                                     k=3)
        assert not is_alpha_k_clique(balanced_six, members, alpha=0.5,
                                     k=2)

    def test_non_clique_rejected(self, balanced_six):
        assert not is_alpha_k_clique(
            balanced_six, {0, 6, 7}, alpha=0.0, k=5)

    def test_maximum_on_planted(self, balanced_six):
        found = maximum_alpha_k_clique(balanced_six, alpha=0.5, k=3)
        assert len(found) == 6

    def test_infeasible_alpha(self, balanced_six):
        found = maximum_alpha_k_clique(balanced_six, alpha=10.0, k=3)
        assert found == set()

    def test_unbalanced_cliques_allowed(self):
        """(alpha, k)-cliques need not be structurally balanced — the
        contrast the paper draws with [31]."""
        graph = SignedGraph.from_edges(
            3, negative_edges=[(0, 1), (1, 2), (0, 2)])
        found = maximum_alpha_k_clique(graph, alpha=0.0, k=2)
        assert len(found) == 3
        assert not is_structurally_balanced(graph)

    @given(signed_graphs(max_vertices=8),
           st.sampled_from([0.0, 0.5, 1.0]),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_matches_oracle(self, graph, alpha, k):
        expected = oracle_alpha_k(graph, alpha, k)
        found = maximum_alpha_k_clique(graph, alpha, k)
        if found:
            assert is_alpha_k_clique(graph, found, alpha, k)
        assert len(found) == expected


class TestBalancedSubgraph:
    def test_empty_graph(self):
        result = eigensign_balanced_subgraph(SignedGraph(0))
        assert result.size == 0

    def test_balanced_graph_kept_whole(self, balanced_six):
        sub, _ = balanced_six.subgraph(range(6))
        result = eigensign_balanced_subgraph(sub, keep_fraction=1.0)
        assert result.size == 6
        assert result.edges_kept == 15

    def test_result_is_balanced(self):
        graph = make_random_signed_graph(40, 0.2, 0.2, seed=8)
        result = eigensign_balanced_subgraph(graph)
        sub, _ = graph.subgraph(result.vertices)
        assert is_structurally_balanced(sub)

    def test_finds_planted_structure(self):
        graph = make_random_signed_graph(60, 0.02, 0.02, seed=9)
        plant_balanced_clique(
            graph, list(range(8)), list(range(8, 16)))
        result = eigensign_balanced_subgraph(graph)
        assert result.size >= 12

    @given(signed_graphs(max_vertices=12))
    @settings(max_examples=40, deadline=None)
    def test_always_returns_balanced_subgraph(self, graph):
        result = eigensign_balanced_subgraph(graph)
        sub, _ = graph.subgraph(result.vertices)
        assert is_structurally_balanced(sub)
        assert not (result.left & result.right)


class TestRecoloring:
    @given(unsigned_graphs())
    @settings(max_examples=60, deadline=None)
    def test_recolor_is_proper(self, graph):
        from repro.unsigned.coloring import is_proper_coloring

        colors = recolor(graph)
        assert is_proper_coloring(graph, colors)
        assert set(colors) == set(graph.vertices())

    @given(unsigned_graphs())
    @settings(max_examples=60, deadline=None)
    def test_bound_sandwich(self, graph):
        """clique <= recolor bound <= greedy bound."""
        lower = maximum_clique_size(graph)
        improved = recoloring_upper_bound(graph)
        plain = coloring_upper_bound(graph)
        assert lower <= improved <= plain

    def test_improves_on_a_known_case(self):
        """A 5-cycle: greedy from degree order may use 3 colours; the
        bound must never drop below the true chromatic number (3)."""
        graph = SignedGraph(5)
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]
        from repro.unsigned.graph import UnsignedGraph

        unsigned = UnsignedGraph.from_edges(5, edges)
        assert recoloring_upper_bound(unsigned) >= 3

    def test_empty(self):
        from repro.unsigned.graph import UnsignedGraph

        assert recoloring_upper_bound(UnsignedGraph(0)) == 0
