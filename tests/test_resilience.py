"""Tests for the resilience layer: budgets, faults, anytime solves.

Three layers:

* unit tests of :class:`repro.resilience.Budget` (with an injectable
  fake clock, so deadline semantics are deterministic),
  :class:`~repro.core.result.SolveResult` and the fault-plan wire
  format;
* the *serial* anytime contracts — a truncated MBC*/PF*/gMBC* solve
  returns a valid (possibly sub-maximum) answer and flags
  ``BUDGET_EXHAUSTED``;
* the CLI truncation exit contract (``--timeout`` / ``--max-nodes``
  exit :data:`repro.cli.EXIT_BUDGET_EXHAUSTED`).

The pooled failure paths (worker death, rebuilds, degradation) live in
``tests/test_chaos.py``.
"""

import os
import random

import pytest

from repro.cli import EXIT_BUDGET_EXHAUSTED, main
from repro.core.gmbc import gmbc_naive, gmbc_star
from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_binary_search, pf_enumeration, pf_star
from repro.core.result import BalancedClique, SolveResult
from repro.resilience import (
    DEADLINE_CHECK_INTERVAL,
    ENV_FAULTS,
    ENV_FAULTS_PARENT,
    Budget,
    BudgetExceeded,
    Fault,
    FaultInjected,
    Status,
    clear_faults,
    encode_plan,
    fire_faults,
    install_faults,
    parse_plan,
)
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph


def random_signed_graph(seed: int, n: int = 40,
                        density: float = 0.3) -> SignedGraph:
    rng = random.Random(seed)
    graph = SignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            roll = rng.random()
            if roll < density:
                graph.add_edge(u, v, POSITIVE)
            elif roll < 2 * density:
                graph.add_edge(u, v, NEGATIVE)
    return graph


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# Budget units


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(deadline=-1.0)
        with pytest.raises(ValueError):
            Budget(max_nodes=-1)

    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        budget.spend(10_000_000)
        budget.check()
        assert not budget.exhausted
        assert budget.status is Status.OPTIMAL
        assert budget.nodes == 10_000_000

    def test_node_cap_is_exact(self):
        budget = Budget(max_nodes=5)
        for _ in range(5):
            budget.spend()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.spend()
        assert excinfo.value.reason == "nodes"
        assert budget.reason == "nodes"
        assert budget.status is Status.BUDGET_EXHAUSTED

    def test_batch_spend_trips_the_cap(self):
        budget = Budget(max_nodes=5)
        with pytest.raises(BudgetExceeded):
            budget.spend(6)

    def test_exhaustion_is_sticky(self):
        budget = Budget(max_nodes=0)
        with pytest.raises(BudgetExceeded):
            budget.spend()
        # check() keeps raising so a shared budget stops later phases.
        with pytest.raises(BudgetExceeded):
            budget.check()
        assert budget.exhausted

    def test_first_reason_wins(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, max_nodes=0, clock=clock)
        with pytest.raises(BudgetExceeded):
            budget.spend()
        clock.advance(5.0)
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check()
        assert excinfo.value.reason == "nodes"

    def test_deadline_via_check(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock)
        budget.check()
        clock.advance(10.0)
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.check()
        assert excinfo.value.reason == "deadline"

    def test_spend_polls_the_deadline_at_the_interval(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        clock.advance(2.0)  # already past the deadline
        # The hot path only reads the clock every
        # DEADLINE_CHECK_INTERVAL nodes, so the first
        # interval - 1 spends pass without a clock read.
        for _ in range(DEADLINE_CHECK_INTERVAL - 1):
            budget.spend()
        with pytest.raises(BudgetExceeded) as excinfo:
            budget.spend()
        assert excinfo.value.reason == "deadline"

    def test_expired_reason_does_not_raise_or_mark(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        assert budget.expired_reason() is None
        clock.advance(1.0)
        assert budget.expired_reason() == "deadline"
        # Observation alone is not exhaustion: only check/spend mark.
        assert not budget.exhausted

    def test_zero_deadline_expires_immediately(self):
        clock = FakeClock()
        budget = Budget(deadline=0.0, clock=clock)
        with pytest.raises(BudgetExceeded):
            budget.check()


class TestSolveResult:
    def test_capture_without_budget(self):
        clique = BalancedClique.from_sides({0, 1}, {2})
        result = SolveResult.capture(clique, None)
        assert result.optimal
        assert result.status is Status.OPTIMAL
        assert result.lower_bound == 3
        assert result.nodes == 0

    def test_capture_with_exhausted_budget(self):
        budget = Budget(max_nodes=0)
        with pytest.raises(BudgetExceeded):
            budget.spend()
        clique = BalancedClique.from_sides({0, 1}, {2})
        result = SolveResult.capture(clique, budget)
        assert not result.optimal
        assert result.status is Status.BUDGET_EXHAUSTED
        assert result.nodes == budget.nodes

    def test_explicit_lower_bound(self):
        clique = BalancedClique.from_sides({0, 1}, {2})
        result = SolveResult.capture(clique, None, lower_bound=2)
        assert result.lower_bound == 2


# ---------------------------------------------------------------------------
# fault plan wire format


@pytest.fixture
def no_faults():
    clear_faults()
    yield
    clear_faults()


class TestFaultPlans:
    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault("explode", 0)
        with pytest.raises(ValueError):
            Fault("kill", -1)
        with pytest.raises(ValueError):
            Fault("stall", 0, seconds=-0.5)

    def test_encode_parse_round_trip(self):
        plan = (Fault("kill", 0), Fault("raise", 2, attempt=1),
                Fault("stall", 3, seconds=0.5))
        spec = encode_plan(plan)
        assert spec == "kill@0#0;raise@2#1;stall@3#0:0.5"
        assert parse_plan(spec) == plan

    def test_parse_rejects_bad_tokens(self):
        with pytest.raises(ValueError, match="bogus"):
            parse_plan("bogus@x#y")
        with pytest.raises(ValueError, match="explode"):
            parse_plan("explode@0#0")

    def test_install_validates_eagerly(self, no_faults):
        with pytest.raises(ValueError):
            install_faults("explode@0#0")
        assert ENV_FAULTS not in os.environ

    def test_install_and_clear(self, no_faults):
        install_faults([Fault("raise", 0)])
        assert os.environ[ENV_FAULTS] == "raise@0#0"
        assert os.environ[ENV_FAULTS_PARENT] == str(os.getpid())
        clear_faults()
        assert ENV_FAULTS not in os.environ
        assert ENV_FAULTS_PARENT not in os.environ

    def test_pid_gate_protects_the_installer(self, no_faults):
        # The installing (parent) process never fires its own faults,
        # so the in-process fallback cannot be killed by the plan.
        install_faults([Fault("raise", 0)])
        fire_faults(0, 0)  # must not raise

    def test_fires_when_not_the_installer(self, no_faults,
                                          monkeypatch):
        install_faults([Fault("raise", 0)])
        monkeypatch.setenv(ENV_FAULTS_PARENT, "0")  # not our pid
        with pytest.raises(FaultInjected):
            fire_faults(0, 0)

    def test_keyed_by_chunk_and_attempt(self, no_faults, monkeypatch):
        install_faults([Fault("raise", 2, attempt=1)])
        monkeypatch.setenv(ENV_FAULTS_PARENT, "0")
        fire_faults(2, 0)  # wrong attempt: no-op
        fire_faults(1, 1)  # wrong chunk: no-op
        with pytest.raises(FaultInjected):
            fire_faults(2, 1)

    def test_stall_fault_sleeps_and_returns(self, no_faults,
                                            monkeypatch):
        install_faults([Fault("stall", 0, seconds=0.0)])
        monkeypatch.setenv(ENV_FAULTS_PARENT, "0")
        fire_faults(0, 0)  # zero-second stall: returns immediately


# ---------------------------------------------------------------------------
# serial anytime contracts


class TestAnytimeSerial:
    def test_mbc_star_zero_deadline_returns_heuristic(self):
        graph = random_signed_graph(11)
        optimum = mbc_star(graph, 2)
        budget = Budget(deadline=0.0)
        clique = mbc_star(graph, 2, budget=budget)
        assert budget.exhausted
        assert budget.status is Status.BUDGET_EXHAUSTED
        if not clique.is_empty:
            assert clique.satisfies(2)
            assert clique.size <= optimum.size

    def test_mbc_star_node_cap_truncates_validly(self):
        graph = random_signed_graph(12)
        optimum = mbc_star(graph, 2)
        budget = Budget(max_nodes=10)
        clique = mbc_star(graph, 2, budget=budget)
        assert budget.exhausted
        if not clique.is_empty:
            assert clique.satisfies(2)
            assert clique.size <= optimum.size

    def test_mbc_star_big_budget_is_exact(self):
        # seed 12 needs real branch-and-bound work (the heuristic is
        # not already optimal), so node accounting is observable.
        graph = random_signed_graph(12)
        optimum = mbc_star(graph, 2)
        budget = Budget(deadline=3600.0, max_nodes=10**9)
        clique = mbc_star(graph, 2, budget=budget)
        assert not budget.exhausted
        assert budget.status is Status.OPTIMAL
        assert clique.size == optimum.size
        assert budget.nodes > 0  # the cap actually accounted nodes

    def test_pf_star_zero_deadline_witnesses_its_bound(self):
        graph = random_signed_graph(14)
        true_beta = pf_star(graph)
        budget = Budget(deadline=0.0)
        outcome = pf_star(graph, return_witness=True, budget=budget)
        assert isinstance(outcome, tuple)
        beta, witness = outcome
        assert budget.exhausted
        assert 0 <= beta <= true_beta
        # The lower bound must be *certified*: a real balanced clique
        # achieving at least beta per side.
        if beta > 0:
            assert witness.satisfies(beta)

    def test_pf_binary_search_truncated_stays_a_lower_bound(self):
        graph = random_signed_graph(15)
        true_beta = pf_binary_search(graph)
        budget = Budget(max_nodes=5)
        beta = pf_binary_search(graph, budget=budget)
        assert beta <= true_beta

    def test_pf_enumeration_budget(self):
        graph = random_signed_graph(16, n=12)
        true_beta = pf_enumeration(graph)
        budget = Budget(max_nodes=3)
        beta = pf_enumeration(graph, budget=budget)
        assert beta <= true_beta

    def test_gmbc_star_fill_down_keeps_entries_valid(self):
        graph = random_signed_graph(17)
        budget = Budget(max_nodes=30)
        results = gmbc_star(graph, budget=budget)
        for tau, clique in enumerate(results):
            assert not clique.is_empty
            assert clique.satisfies(tau), \
                f"fill-down entry for tau={tau} is not valid"

    def test_gmbc_naive_truncates_to_a_valid_prefix(self):
        graph = random_signed_graph(18)
        full = gmbc_naive(graph)
        budget = Budget(max_nodes=50)
        results = gmbc_naive(graph, budget=budget)
        assert len(results) <= len(full)
        for tau, clique in enumerate(results):
            assert clique.satisfies(tau)

    def test_shared_budget_stops_composition(self):
        # One budget across two solves: the second sees it exhausted
        # immediately and returns its heuristic without new search.
        graph = random_signed_graph(19)
        budget = Budget(max_nodes=5)
        mbc_star(graph, 2, budget=budget)
        assert budget.exhausted
        nodes_before = budget.nodes
        mbc_star(graph, 1, budget=budget)
        assert budget.nodes == nodes_before


# ---------------------------------------------------------------------------
# CLI exit contract


@pytest.fixture
def graph_file(tmp_path, balanced_six):
    from repro.signed.io import save_signed_graph
    path = tmp_path / "graph.txt"
    save_signed_graph(balanced_six, path)
    return str(path)


class TestCliBudget:
    def test_mbc_timeout_exit_code(self, capsys):
        assert main(["mbc", "dataset:bitcoin", "--tau", "2",
                     "--timeout", "0"]) == EXIT_BUDGET_EXHAUSTED
        out = capsys.readouterr().out
        assert "budget exhausted (deadline)" in out
        assert "certified lower bound" in out

    def test_mbc_max_nodes_exit_code(self, capsys):
        assert main(["mbc", "dataset:bitcoin", "--tau", "2",
                     "--max-nodes", "1"]) == EXIT_BUDGET_EXHAUSTED
        assert "budget exhausted (nodes)" in capsys.readouterr().out

    def test_pf_timeout_prints_inequality(self, capsys):
        assert main(["pf", "dataset:bitcoin",
                     "--timeout", "0"]) == EXIT_BUDGET_EXHAUSTED
        assert "beta(G) >=" in capsys.readouterr().out

    def test_gmbc_timeout_exit_code(self, capsys):
        assert main(["gmbc", "dataset:bitcoin",
                     "--timeout", "0"]) == EXIT_BUDGET_EXHAUSTED
        assert "budget exhausted" in capsys.readouterr().out

    def test_unbudgeted_solves_still_exit_zero(self, graph_file,
                                               capsys):
        assert main(["mbc", graph_file, "--tau", "3"]) == 0
        assert "budget exhausted" not in capsys.readouterr().out

    def test_generous_budget_exits_zero(self, graph_file, capsys):
        assert main(["mbc", graph_file, "--tau", "3",
                     "--timeout", "3600"]) == 0
        out = capsys.readouterr().out
        assert "|C|=6" in out
        assert "budget exhausted" not in out

    def test_baseline_rejects_budget_flags(self, graph_file, capsys):
        rc = main(["mbc", graph_file, "--algorithm", "baseline",
                   "--timeout", "1"])
        assert rc == 1
        assert "--algorithm star" in capsys.readouterr().err

    def test_negative_timeout_is_an_error(self, graph_file):
        assert main(["mbc", graph_file, "--timeout", "-1"]) == 1
