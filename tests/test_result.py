"""Tests for the BalancedClique result type."""

import pytest

from repro.core.result import EMPTY_RESULT, BalancedClique
from repro.signed.graph import SignedGraph


class TestConstruction:
    def test_from_sides_canonicalizes(self):
        a = BalancedClique.from_sides({5, 6}, {1, 2})
        b = BalancedClique.from_sides({1, 2}, {5, 6})
        assert a == b
        assert min(a.left) == 1

    def test_empty_side_goes_right(self):
        clique = BalancedClique.from_sides(set(), {3, 4})
        assert clique.left == {3, 4}
        assert clique.right == frozenset()

    def test_from_vertices(self, toy_figure2):
        clique = BalancedClique.from_vertices(toy_figure2, {0, 1, 2, 3})
        assert clique.vertices == {0, 1, 2, 3}
        assert clique.polarization == 2

    def test_from_vertices_rejects_unbalanced(self, toy_figure2):
        with pytest.raises(ValueError):
            BalancedClique.from_vertices(toy_figure2, {0, 4})


class TestProperties:
    def test_size(self):
        clique = BalancedClique.from_sides({1, 2}, {3})
        assert clique.size == 3

    def test_polarization(self):
        clique = BalancedClique.from_sides({1, 2, 3}, {4})
        assert clique.polarization == 1

    def test_polarization_one_sided(self):
        clique = BalancedClique.from_sides({1, 2, 3}, set())
        assert clique.polarization == 0

    def test_satisfies(self):
        clique = BalancedClique.from_sides({1, 2}, {3, 4, 5})
        assert clique.satisfies(2)
        assert not clique.satisfies(3)

    def test_empty_result(self):
        assert EMPTY_RESULT.is_empty
        assert EMPTY_RESULT.size == 0
        assert EMPTY_RESULT.satisfies(0)
        assert not EMPTY_RESULT.satisfies(1)

    def test_equality_and_hash(self):
        a = BalancedClique.from_sides({1}, {2})
        b = BalancedClique.from_sides({2}, {1})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestDescribe:
    def test_describe_with_ids(self):
        clique = BalancedClique.from_sides({0, 1}, {2})
        text = clique.describe()
        assert "|C|=3" in text
        assert "<2|1>" in text

    def test_describe_with_labels(self):
        graph = SignedGraph(3, labels=["alpha", "beta", "gamma"])
        clique = BalancedClique.from_sides({0}, {2})
        text = clique.describe(graph)
        assert "alpha" in text
        assert "gamma" in text
