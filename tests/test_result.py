"""Tests for the BalancedClique result type."""

import pytest

from repro.core.result import EMPTY_RESULT, BalancedClique
from repro.signed.graph import SignedGraph


class TestConstruction:
    def test_from_sides_canonicalizes(self):
        a = BalancedClique.from_sides({5, 6}, {1, 2})
        b = BalancedClique.from_sides({1, 2}, {5, 6})
        assert a == b
        assert min(a.left) == 1

    def test_empty_side_goes_right(self):
        clique = BalancedClique.from_sides(set(), {3, 4})
        assert clique.left == {3, 4}
        assert clique.right == frozenset()

    def test_from_vertices(self, toy_figure2):
        clique = BalancedClique.from_vertices(toy_figure2, {0, 1, 2, 3})
        assert clique.vertices == {0, 1, 2, 3}
        assert clique.polarization == 2

    def test_from_vertices_rejects_unbalanced(self, toy_figure2):
        with pytest.raises(ValueError):
            BalancedClique.from_vertices(toy_figure2, {0, 4})


class TestProperties:
    def test_size(self):
        clique = BalancedClique.from_sides({1, 2}, {3})
        assert clique.size == 3

    def test_polarization(self):
        clique = BalancedClique.from_sides({1, 2, 3}, {4})
        assert clique.polarization == 1

    def test_polarization_one_sided(self):
        clique = BalancedClique.from_sides({1, 2, 3}, set())
        assert clique.polarization == 0

    def test_satisfies(self):
        clique = BalancedClique.from_sides({1, 2}, {3, 4, 5})
        assert clique.satisfies(2)
        assert not clique.satisfies(3)

    def test_empty_result(self):
        assert EMPTY_RESULT.is_empty
        assert EMPTY_RESULT.size == 0
        assert EMPTY_RESULT.satisfies(0)
        assert not EMPTY_RESULT.satisfies(1)

    def test_equality_and_hash(self):
        a = BalancedClique.from_sides({1}, {2})
        b = BalancedClique.from_sides({2}, {1})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestDescribe:
    def test_describe_with_ids(self):
        clique = BalancedClique.from_sides({0, 1}, {2})
        text = clique.describe()
        assert "|C|=3" in text
        assert "<2|1>" in text

    def test_describe_with_labels(self):
        graph = SignedGraph(3, labels=["alpha", "beta", "gamma"])
        clique = BalancedClique.from_sides({0}, {2})
        text = clique.describe(graph)
        assert "alpha" in text
        assert "gamma" in text


class TestCliqueCodec:
    """``BalancedClique.to_json`` / ``from_json`` round trips."""

    def test_round_trip(self):
        clique = BalancedClique.from_sides({5, 1}, {2, 8})
        assert BalancedClique.from_json(clique.to_json()) == clique

    def test_round_trip_empty(self):
        assert BalancedClique.from_json(EMPTY_RESULT.to_json()) == \
            EMPTY_RESULT

    def test_round_trip_one_sided(self):
        clique = BalancedClique.from_sides({3, 4, 7}, set())
        assert BalancedClique.from_json(clique.to_json()) == clique

    def test_wire_form_is_sorted_plain_data(self):
        payload = BalancedClique.from_sides({9, 1}, {4, 2}).to_json()
        assert payload == {"left": [1, 9], "right": [2, 4]}

    def test_swapped_sides_decode_canonically(self):
        decoded = BalancedClique.from_json(
            {"left": [7, 8], "right": [1, 2]})
        assert decoded == BalancedClique.from_sides({1, 2}, {7, 8})

    def test_missing_sides_default_empty(self):
        assert BalancedClique.from_json({}) == EMPTY_RESULT

    def test_rejects_non_object(self):
        for payload in (None, [1, 2], "clique", 7):
            with pytest.raises(ValueError):
                BalancedClique.from_json(payload)

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown clique fields"):
            BalancedClique.from_json({"left": [1], "middle": [2]})

    def test_rejects_non_integer_vertices(self):
        for bad in ([1, "2"], [1.5], [True], "not a list"):
            with pytest.raises(ValueError):
                BalancedClique.from_json({"left": bad, "right": []})

    def test_rejects_overlapping_sides(self):
        with pytest.raises(ValueError, match="overlap"):
            BalancedClique.from_json({"left": [1, 2], "right": [2, 3]})


class TestSolveResultCodec:
    """``SolveResult`` wire form: exhaustive round trips + rejection."""

    def _samples(self):
        from repro.core.result import SolveResult
        from repro.resilience.budget import Status

        witness = BalancedClique.from_sides({0, 2}, {1, 5})
        return [
            SolveResult(clique=EMPTY_RESULT),
            SolveResult(clique=witness, lower_bound=4, nodes=17),
            SolveResult(clique=witness, status=Status.BUDGET_EXHAUSTED,
                        lower_bound=4, nodes=123456),
            SolveResult(clique=EMPTY_RESULT,
                        status=Status.BUDGET_EXHAUSTED,
                        lower_bound=0, nodes=1),
            SolveResult(clique=BalancedClique.from_sides({3}, set()),
                        lower_bound=1, nodes=0),
        ]

    def test_round_trip_all_statuses(self):
        from repro.core.result import SolveResult

        for result in self._samples():
            decoded = SolveResult.from_json(result.to_json())
            assert decoded == result, result

    def test_wire_form_carries_the_schema_tag(self):
        from repro.core.result import RESULT_SCHEMA

        for result in self._samples():
            payload = result.to_json()
            assert payload["schema"] == RESULT_SCHEMA
            assert set(payload) == {"schema", "status", "lower_bound",
                                    "nodes", "clique"}

    def test_json_dumps_round_trip(self):
        import json

        from repro.core.result import SolveResult

        for result in self._samples():
            wire = json.dumps(result.to_json(), sort_keys=True)
            assert SolveResult.from_json(json.loads(wire)) == result

    def test_truncated_result_keeps_its_certificate(self):
        from repro.core.result import SolveResult

        payload = self._samples()[2].to_json()
        decoded = SolveResult.from_json(payload)
        assert not decoded.optimal
        assert decoded.lower_bound == 4
        assert decoded.clique.size == 4

    def test_rejects_non_object(self):
        from repro.core.result import SolveResult

        for payload in (None, [], "result", 3):
            with pytest.raises(ValueError):
                SolveResult.from_json(payload)

    def test_rejects_wrong_schema(self):
        from repro.core.result import SolveResult

        payload = self._samples()[0].to_json()
        payload["schema"] = "repro.result/99"
        with pytest.raises(ValueError, match="schema"):
            SolveResult.from_json(payload)

    def test_rejects_missing_schema(self):
        from repro.core.result import SolveResult

        payload = self._samples()[0].to_json()
        del payload["schema"]
        with pytest.raises(ValueError, match="schema"):
            SolveResult.from_json(payload)

    def test_rejects_unknown_status(self):
        from repro.core.result import SolveResult

        payload = self._samples()[0].to_json()
        payload["status"] = "maybe"
        with pytest.raises(ValueError, match="status"):
            SolveResult.from_json(payload)

    def test_rejects_unknown_fields(self):
        from repro.core.result import SolveResult

        payload = self._samples()[0].to_json()
        payload["runtime"] = 1.5
        with pytest.raises(ValueError, match="unknown result fields"):
            SolveResult.from_json(payload)

    def test_rejects_bad_counters(self):
        from repro.core.result import SolveResult

        for name, bad in (("lower_bound", -1), ("lower_bound", "4"),
                          ("nodes", -2), ("nodes", 1.5),
                          ("nodes", True)):
            payload = self._samples()[1].to_json()
            payload[name] = bad
            with pytest.raises(ValueError, match=name):
                SolveResult.from_json(payload)

    def test_rejects_malformed_clique(self):
        from repro.core.result import SolveResult

        payload = self._samples()[1].to_json()
        payload["clique"] = {"left": [1], "right": [1]}
        with pytest.raises(ValueError, match="overlap"):
            SolveResult.from_json(payload)

    def test_capture_then_round_trip(self):
        from repro.core.result import SolveResult
        from repro.resilience import Budget

        clique = BalancedClique.from_sides({0, 1}, {2, 3})
        unbounded = SolveResult.capture(clique, None)
        assert SolveResult.from_json(unbounded.to_json()) == unbounded
        assert unbounded.optimal

        budget = Budget(max_nodes=10)
        budgeted = SolveResult.capture(clique, budget, lower_bound=2)
        decoded = SolveResult.from_json(budgeted.to_json())
        assert decoded.lower_bound == 2
        assert decoded.status is budgeted.status
