"""Black-box tests of the serve daemon over a real socket.

Every test here talks HTTP to a :class:`~repro.serve.BackgroundServer`
— the same transport a deployed client uses — so the wire contract
(status codes, JSON shapes, cache/coalescing counters) is pinned
end-to-end, not via internal calls.  The blocking core gets its own
direct coverage where the HTTP layer would only add noise
(`TestServiceCore`).

Counter assertions read ``GET /stats`` *deltas* so tests stay valid
regardless of what earlier requests on the same fixture did.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.mbc_star import mbc_star
from repro.core.pf import pf_star
from repro.core.result import BalancedClique, SolveResult
from repro.serve import (
    BackgroundServer,
    ProtocolError,
    ResultCache,
    SERVE_SCHEMA,
    SolverService,
    parse_dataset_ref,
)
from repro.signed.graph import POSITIVE, SignedGraph

from .conftest import make_random_signed_graph

# -- fixtures and helpers ----------------------------------------------

#: A 3|3 two-faction graph: optimum {0,1,2}|{3,4,5} at tau=3.
FACTIONS = (
    [[u, v, 1] for u, v in [(0, 1), (0, 2), (1, 2),
                            (3, 4), (3, 5), (4, 5)]]
    + [[u, v, -1] for u in (0, 1, 2) for v in (3, 4, 5)])

#: Big enough that a solve takes real wall time (coalescing window)
#: and a ``max_nodes=1`` budget truncates.
SLOW_GRAPH_ARGS = (100, 0.55, 0.3, 7)


def edges_of(graph: SignedGraph) -> list[list[int]]:
    """The inline-triples spelling of a graph's edge list."""
    return [[u, v, 1 if sign == POSITIVE else -1]
            for u, v, sign in graph.edges()]


@pytest.fixture()
def server():
    with BackgroundServer(SolverService()) as running:
        yield running


def request(server: BackgroundServer, method: str, path: str,
            payload: "dict | None" = None) -> "tuple[int, dict]":
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        server.url + path, data=data, method=method,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post(server: BackgroundServer, path: str,
         payload: dict) -> "tuple[int, dict]":
    return request(server, "POST", path, payload)


def get(server: BackgroundServer, path: str) -> "tuple[int, dict]":
    return request(server, "GET", path)


def counters(server: BackgroundServer) -> "dict[str, int]":
    status, body = get(server, "/stats")
    assert status == 200
    return dict(body["counters"])


def counter_delta(before: "dict[str, int]", after: "dict[str, int]",
                  name: str) -> int:
    return after.get(name, 0) - before.get(name, 0)


def read_raw_response(sock: socket.socket) -> "tuple[int, dict]":
    """Read one framed HTTP response off a raw socket."""
    data = b""
    while b"\r\n\r\n" not in data:
        data += sock.recv(4096)
    head, _, rest = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    length = next(
        int(line.split(b":")[1])
        for line in head.split(b"\r\n")
        if line.lower().startswith(b"content-length"))
    while len(rest) < length:
        rest += sock.recv(4096)
    return status, json.loads(rest[:length])


# -- routing and transport ---------------------------------------------


class TestRouting:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["schema"] == SERVE_SCHEMA

    def test_unknown_path_is_404(self, server):
        status, body = get(server, "/nope")
        assert status == 404
        assert "/nope" in body["error"]

    def test_wrong_method_is_405(self, server):
        status, body = get(server, "/solve")
        assert status == 405
        assert "POST" in body["error"]

    def test_post_to_stats_is_405(self, server):
        status, _ = post(server, "/stats", {})
        assert status == 405

    def test_empty_body_is_400(self, server):
        status, body = request(server, "POST", "/solve", None)
        assert status == 400
        assert "JSON object" in body["error"]

    def test_invalid_json_is_400(self, server):
        req = urllib.request.Request(
            server.url + "/solve", data=b"{not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_non_object_body_is_400(self, server):
        req = urllib.request.Request(
            server.url + "/solve", data=b"[1, 2]", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(req, timeout=10)
        assert excinfo.value.code == 400

    def test_rejections_bump_the_rejected_counter(self, server):
        before = counters(server)
        get(server, "/nope")
        post(server, "/solve", {"problem": "mbc"})
        after = counters(server)
        assert counter_delta(before, after, "serve.rejected") == 2
        assert counter_delta(before, after, "serve.errors") == 0


class TestKeepAlive:
    def _raw_request(self, payload: dict, close: bool = False) -> bytes:
        body = json.dumps(payload).encode()
        connection = b"Connection: close\r\n" if close else b""
        return (b"POST /solve HTTP/1.1\r\n"
                b"Host: test\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                + connection + b"\r\n" + body)

    def _read_response(self, sock: socket.socket) -> "tuple[int, dict]":
        return read_raw_response(sock)

    def test_two_requests_on_one_connection(self, server):
        payload = {"graph": {"edges": FACTIONS}, "problem": "mbc",
                   "tau": 3}
        with socket.create_connection(
                (server.app.host, server.app.port), timeout=30) as sock:
            sock.sendall(self._raw_request(payload))
            status1, body1 = self._read_response(sock)
            sock.sendall(self._raw_request(payload))
            status2, body2 = self._read_response(sock)
        assert status1 == status2 == 200
        assert body1["cache"] == "miss"
        assert body2["cache"] == "hit"
        assert body1["result"] == body2["result"]

    def test_connection_close_is_honoured(self, server):
        payload = {"graph": {"edges": FACTIONS}, "problem": "mbc"}
        with socket.create_connection(
                (server.app.host, server.app.port), timeout=30) as sock:
            sock.sendall(self._raw_request(payload, close=True))
            status, _ = self._read_response(sock)
            assert status == 200
            sock.settimeout(10)
            assert sock.recv(4096) == b""  # server closed its side


class TestTransportLimits:
    """Oversized framing answers a 4xx and closes — never a dropped
    connection with an unhandled task exception (the StreamReader
    64 KiB line limit surfaces as ValueError from readline)."""

    def _exchange(self, server, data: bytes) -> "tuple[int, dict]":
        with socket.create_connection(
                (server.app.host, server.app.port),
                timeout=30) as sock:
            sock.sendall(data)
            status, body = read_raw_response(sock)
            sock.settimeout(10)
            try:
                trailing = sock.recv(4096)
            except ConnectionError:
                trailing = b""  # reset counts as closed
            assert trailing == b""  # server closed its side
        return status, body

    def test_oversized_request_line_is_400(self, server):
        status, body = self._exchange(
            server, b"GET /" + b"a" * 70_000 + b" HTTP/1.1\r\n\r\n")
        assert status == 400
        assert "request line" in body["error"]

    def test_oversized_header_line_is_431(self, server):
        status, body = self._exchange(
            server,
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
            b"X-Pad: " + b"a" * 70_000 + b"\r\n\r\n")
        assert status == 431
        assert "header line" in body["error"]

    def test_too_many_headers_is_431(self, server):
        headers = b"".join(
            b"X-H%d: v\r\n" % index for index in range(150))
        status, body = self._exchange(
            server,
            b"GET /healthz HTTP/1.1\r\n" + headers + b"\r\n")
        assert status == 431
        assert "headers" in body["error"]

    def test_header_count_under_the_cap_still_serves(self, server):
        headers = b"".join(
            b"X-H%d: v\r\n" % index for index in range(50))
        with socket.create_connection(
                (server.app.host, server.app.port),
                timeout=30) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\n" + headers + b"\r\n")
            status, body = read_raw_response(sock)
        assert status == 200
        assert body["status"] == "ok"


# -- request validation ------------------------------------------------


class TestSolveValidation:
    def _reject(self, server, payload: dict, *needles: str) -> None:
        status, body = post(server, "/solve", payload)
        assert status == 400, body
        for needle in needles:
            assert needle in body["error"], body["error"]

    def test_unknown_problem(self, server):
        self._reject(server, {"graph": {"edges": FACTIONS},
                              "problem": "sat"}, "problem", "sat")

    def test_missing_problem(self, server):
        self._reject(server, {"graph": {"edges": FACTIONS}}, "problem")

    def test_unknown_field(self, server):
        self._reject(server, {"graph": {"edges": FACTIONS},
                              "problem": "mbc", "depth": 4},
                     "unknown request fields", "depth")

    def test_bad_tau(self, server):
        for tau in (-1, "3", True, 1.5):
            self._reject(server, {"graph": {"edges": FACTIONS},
                                  "problem": "mbc", "tau": tau}, "tau")

    def test_unknown_engine(self, server):
        self._reject(server, {"graph": {"edges": FACTIONS},
                              "problem": "mbc", "engine": "cuda"},
                     "engine", "cuda")

    def test_bad_timeout(self, server):
        for timeout in (-1, "fast", True):
            self._reject(server, {"graph": {"edges": FACTIONS},
                                  "problem": "mbc",
                                  "timeout": timeout}, "timeout")

    def test_bad_max_nodes(self, server):
        for max_nodes in (-5, 2.5, "many"):
            self._reject(server, {"graph": {"edges": FACTIONS},
                                  "problem": "mbc",
                                  "max_nodes": max_nodes}, "max_nodes")

    def test_missing_graph(self, server):
        self._reject(server, {"problem": "mbc"}, "graph")

    def test_bad_graph_ref_prefix(self, server):
        self._reject(server, {"graph": "file:/etc/passwd",
                              "problem": "mbc"}, "dataset:", "graph:")

    def test_inline_graph_unknown_field(self, server):
        self._reject(server, {"graph": {"edges": [], "directed": True},
                              "problem": "mbc"}, "directed")

    def test_unknown_dataset(self, server):
        self._reject(server, {"graph": "dataset:enron",
                              "problem": "mbc"}, "enron")

    def test_bad_dataset_scale(self, server):
        self._reject(server, {"graph": "dataset:bitcoin@big",
                              "problem": "mbc"}, "scale")
        self._reject(server, {"graph": "dataset:bitcoin@0",
                              "problem": "mbc"}, "scale")

    def test_unregistered_graph_ref_is_404(self, server):
        status, body = post(server, "/solve", {
            "graph": "graph:ghost", "problem": "mbc"})
        assert status == 404
        assert "ghost" in body["error"]


class TestInlineEdgeErrors:
    """The satellite fix: library parse errors surface as 400s with
    the library's own diagnostics, never 500s."""

    def _reject(self, server, edges: object, *needles: str) -> None:
        before = counters(server)
        status, body = post(server, "/solve", {
            "graph": {"edges": edges}, "problem": "mbc"})
        after = counters(server)
        assert status == 400, body
        assert "invalid edge list" in body["error"]
        for needle in needles:
            assert needle in body["error"], body["error"]
        assert counter_delta(before, after, "serve.errors") == 0

    def test_self_loop_payload(self, server):
        self._reject(server, [[0, 0, 1]], "line 1", "self-loop")

    def test_self_loop_line_number_survives(self, server):
        self._reject(server, [[0, 1, 1], [2, 2, -1]],
                     "line 2", "self-loop")

    def test_conflicting_duplicate_edge_payload(self, server):
        self._reject(server, [[0, 1, 1], [0, 1, -1]], "0", "1")

    def test_bad_sign_token(self, server):
        self._reject(server, ["0 1 5"], "line 1")

    def test_text_blob_spelling(self, server):
        self._reject(server, "0 1 1\n0 0 1", "line 2", "self-loop")

    def test_malformed_triple_is_400(self, server):
        status, body = post(server, "/solve", {
            "graph": {"edges": [[0, 1]]}, "problem": "mbc"})
        assert status == 400
        assert "edges[0]" in body["error"]

    def test_bad_edges_type_is_400(self, server):
        status, body = post(server, "/solve", {
            "graph": {"edges": 42}, "problem": "mbc"})
        assert status == 400


# -- solving through the wire ------------------------------------------


class TestSolve:
    def test_mbc_answer_matches_direct_solve(self, server):
        status, body = post(server, "/solve", {
            "graph": {"edges": FACTIONS}, "problem": "mbc", "tau": 3})
        assert status == 200
        assert body["status"] == "optimal"
        assert body["problem"] == "mbc"
        result = SolveResult.from_json(body["result"])
        assert result.clique.left == frozenset({0, 1, 2})
        assert result.clique.right == frozenset({3, 4, 5})
        assert result.lower_bound == 6

    def test_pf_answer_carries_beta_and_witness(self, server):
        graph = make_random_signed_graph(30, 0.4, 0.3, 11)
        status, body = post(server, "/solve", {
            "graph": {"edges": edges_of(graph)}, "problem": "pf"})
        assert status == 200
        outcome = pf_star(graph, return_witness=True)
        assert isinstance(outcome, tuple)
        beta, witness = outcome
        assert body["beta"] == beta
        served = SolveResult.from_json(body["result"])
        assert served.lower_bound == beta
        assert served.clique.polarization == beta

    def test_gmbc_answer_lists_a_clique_per_tau(self, server):
        graph = make_random_signed_graph(25, 0.45, 0.3, 13)
        status, body = post(server, "/solve", {
            "graph": {"edges": edges_of(graph)}, "problem": "gmbc"})
        assert status == 200
        cliques = [BalancedClique.from_json(c)
                   for c in body["result"]["cliques"]]
        assert body["result"]["beta"] == len(cliques) - 1
        for tau, clique in enumerate(cliques):
            direct = mbc_star(graph, tau)
            assert clique.size == direct.size
            assert clique.polarization >= tau

    def test_engine_override_is_reported(self, server):
        status, body = post(server, "/solve", {
            "graph": {"edges": FACTIONS}, "problem": "mbc",
            "engine": "set"})
        assert status == 200
        assert body["engine"] == "set"

    def test_dataset_ref_solves(self, server):
        status, body = post(server, "/solve", {
            "graph": "dataset:bitcoin@0.05", "problem": "mbc",
            "tau": 2})
        assert status == 200
        assert body["status"] == "optimal"
        assert len(body["fingerprint"]) == 64


class TestCache:
    def test_identical_request_hits(self, server):
        payload = {"graph": {"edges": FACTIONS}, "problem": "mbc",
                   "tau": 3}
        before = counters(server)
        _, first = post(server, "/solve", payload)
        _, second = post(server, "/solve", payload)
        after = counters(server)
        assert first["cache"] == "miss"
        assert second["cache"] == "hit"
        assert first["result"] == second["result"]
        assert counter_delta(before, after, "serve.cache_misses") == 1
        assert counter_delta(before, after, "serve.cache_hits") == 1

    def test_different_tau_misses(self, server):
        base = {"graph": {"edges": FACTIONS}, "problem": "mbc"}
        post(server, "/solve", {**base, "tau": 3})
        _, body = post(server, "/solve", {**base, "tau": 2})
        assert body["cache"] == "miss"

    def test_pf_ignores_tau_in_the_key(self, server):
        base = {"graph": {"edges": FACTIONS}, "problem": "pf"}
        post(server, "/solve", {**base, "tau": 1})
        _, body = post(server, "/solve", {**base, "tau": 2})
        assert body["cache"] == "hit"

    def test_different_engine_misses(self, server):
        base = {"graph": {"edges": FACTIONS}, "problem": "mbc",
                "tau": 3}
        post(server, "/solve", {**base, "engine": "bitset"})
        _, body = post(server, "/solve", {**base, "engine": "set"})
        assert body["cache"] == "miss"

    def test_same_graph_inline_vs_dataset_shares_entries(self, server):
        # Fingerprint keying: the same content served two ways is one
        # cache entry.
        _, first = post(server, "/solve", {
            "graph": "dataset:bitcoin@0.05", "problem": "mbc",
            "tau": 2})
        from repro.datasets.registry import load
        graph = load("bitcoin", scale=0.05)
        _, second = post(server, "/solve", {
            "graph": {"edges": edges_of(graph)}, "problem": "mbc",
            "tau": 2})
        assert first["fingerprint"] == second["fingerprint"]
        assert second["cache"] == "hit"

    def test_cache_clear_forces_a_fresh_solve(self, server):
        payload = {"graph": {"edges": FACTIONS}, "problem": "mbc",
                   "tau": 3}
        post(server, "/solve", payload)
        status, body = post(server, "/cache/clear", {})
        assert status == 200
        assert body["cleared"] >= 1
        _, again = post(server, "/solve", payload)
        assert again["cache"] == "miss"

    def test_stats_reports_cache_occupancy(self, server):
        post(server, "/solve", {"graph": {"edges": FACTIONS},
                                "problem": "mbc", "tau": 3})
        _, body = get(server, "/stats")
        assert body["cache"]["size"] >= 1
        assert body["cache"]["capacity"] >= body["cache"]["size"]


class TestTruncation:
    """Budget-truncated requests: HTTP 200, certified bound, never
    cached."""

    def _slow_payload(self) -> dict:
        graph = make_random_signed_graph(*SLOW_GRAPH_ARGS)
        return {"graph": {"edges": edges_of(graph)}, "problem": "mbc",
                "tau": 3, "max_nodes": 1}

    def test_truncated_solve_is_200_budget_exhausted(self, server):
        status, body = post(server, "/solve", self._slow_payload())
        assert status == 200
        assert body["status"] == "budget_exhausted"
        result = SolveResult.from_json(body["result"])
        assert result.status.value == "budget_exhausted"
        assert result.lower_bound == result.clique.size

    def test_truncated_results_are_never_cached(self, server):
        payload = self._slow_payload()
        before = counters(server)
        _, first = post(server, "/solve", payload)
        _, second = post(server, "/solve", payload)
        after = counters(server)
        assert first["cache"] == second["cache"] == "miss"
        assert counter_delta(before, after, "serve.truncated") == 2
        assert counter_delta(before, after, "serve.cache_hits") == 0

    def test_unbudgeted_rerun_upgrades_to_optimal(self, server):
        payload = self._slow_payload()
        _, truncated = post(server, "/solve", payload)
        del payload["max_nodes"]
        _, full = post(server, "/solve", payload)
        assert full["status"] == "optimal"
        assert full["result"]["lower_bound"] >= \
            truncated["result"]["lower_bound"]


class TestConcurrency:
    def _fire(self, server, payload: dict,
              results: "list[tuple[int, dict]]") -> threading.Thread:
        def run() -> None:
            results.append(post(server, "/solve", payload))

        thread = threading.Thread(target=run)
        thread.start()
        return thread

    def test_concurrent_distinct_clients_all_answered(self, server):
        results: "list[tuple[int, dict]]" = []
        threads = [
            self._fire(server, {
                "graph": {"edges": FACTIONS}, "problem": "mbc",
                "tau": tau}, results)
            for tau in (1, 2, 3) for _ in range(2)]
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 6
        assert all(status == 200 for status, _ in results)
        assert all(body["status"] == "optimal" for _, body in results)

    def test_identical_inflight_requests_coalesce(self, server):
        graph = make_random_signed_graph(*SLOW_GRAPH_ARGS)
        payload = {"graph": {"edges": edges_of(graph)},
                   "problem": "mbc", "tau": 3}
        before = counters(server)
        results: "list[tuple[int, dict]]" = []
        threads = [self._fire(server, payload, results)
                   for _ in range(3)]
        for thread in threads:
            thread.join(timeout=120)
        after = counters(server)
        assert len(results) == 3
        bodies = [body for _, body in results]
        assert all(b["result"] == bodies[0]["result"] for b in bodies)
        # Exactly one solve ran; the rest coalesced onto it or (if
        # they arrived after it finished) hit the cache.
        assert counter_delta(before, after, "serve.cache_misses") == 1
        assert counter_delta(before, after, "serve.coalesced") \
            + counter_delta(before, after, "serve.cache_hits") == 2


# -- the graph registry ------------------------------------------------


class TestRegistry:
    def _register(self, server, name: str = "g",
                  tau: int = 3) -> "tuple[int, dict]":
        return post(server, "/graphs", {
            "name": name, "graph": {"edges": FACTIONS}, "tau": tau})

    def test_register_reports_the_registry_row(self, server):
        status, body = self._register(server)
        assert status == 200
        assert body["name"] == "g"
        assert body["n"] == 6
        assert body["m"] == len(FACTIONS)
        assert body["tau"] == 3
        assert body["edits"] == 0

    def test_registered_graphs_are_listed(self, server):
        self._register(server, "alpha")
        self._register(server, "beta")
        status, body = get(server, "/graphs")
        assert status == 200
        assert sorted(g["name"] for g in body["graphs"]) == \
            ["alpha", "beta"]

    def test_duplicate_name_is_409(self, server):
        self._register(server)
        status, body = self._register(server)
        assert status == 409
        assert "'g'" in body["error"]

    def test_register_requires_tau_at_least_one(self, server):
        status, body = self._register(server, tau=0)
        assert status == 400
        assert "tau" in body["error"]

    def test_bad_name_is_400(self, server):
        for name in ("", "a/b", "a b", 7):
            status, body = post(server, "/graphs", {
                "name": name, "graph": {"edges": FACTIONS}})
            assert status == 400, name

    def test_register_from_graph_ref_is_400(self, server):
        self._register(server)
        status, body = post(server, "/graphs", {
            "name": "g2", "graph": "graph:g"})
        assert status == 400
        assert "graph:" in body["error"]

    def test_register_from_dataset_ref(self, server):
        status, body = post(server, "/graphs", {
            "name": "btc", "graph": "dataset:bitcoin@0.05", "tau": 2})
        assert status == 200
        _, solved = post(server, "/solve", {
            "graph": "graph:btc", "problem": "mbc", "tau": 2})
        assert solved["resident"] is True
        assert solved["fingerprint"] == body["fingerprint"]

    def test_resident_solve_matches_direct(self, server):
        self._register(server)
        status, body = post(server, "/solve", {
            "graph": "graph:g", "problem": "mbc", "tau": 3})
        assert status == 200
        assert body["resident"] is True
        result = SolveResult.from_json(body["result"])
        assert result.clique.size == 6

    def test_non_resident_tau_still_answers(self, server):
        self._register(server, tau=3)
        status, body = post(server, "/solve", {
            "graph": "graph:g", "problem": "mbc", "tau": 1})
        assert status == 200
        assert body["resident"] is False
        assert SolveResult.from_json(body["result"]).clique.size == 6

    def test_resident_pf_answer_carries_witness(self, server):
        # The resident solver's beta() must back its bound with the
        # same witness contract the direct pf_star path has — and the
        # cached payload must replay that witness to inline requests
        # for content-identical graphs.
        self._register(server)
        status, body = post(server, "/solve", {
            "graph": "graph:g", "problem": "pf"})
        assert status == 200
        assert body["resident"] is True
        assert body["beta"] == 3
        served = SolveResult.from_json(body["result"])
        assert served.lower_bound == 3
        assert served.clique.polarization == 3
        _, again = post(server, "/solve", {
            "graph": {"edges": FACTIONS}, "problem": "pf"})
        assert again["cache"] == "hit"
        assert SolveResult.from_json(
            again["result"]).clique.polarization == 3


class TestEdits:
    def _setup(self, server) -> None:
        status, _ = post(server, "/graphs", {
            "name": "g", "graph": {"edges": FACTIONS}, "tau": 3})
        assert status == 200

    def test_edit_script_text_form(self, server):
        self._setup(server)
        status, body = post(server, "/graphs/g/edits", {
            "script": "remove 0 1\nadd 0 1 +"})
        assert status == 200
        assert body["applied"] == 2
        assert body["name"] == "g"

    def test_edits_array_form(self, server):
        self._setup(server)
        status, body = post(server, "/graphs/g/edits", {
            "edits": ["flip 0 1", "flip 0 1"]})
        assert status == 200
        assert body["applied"] == 2

    def test_both_script_and_edits_is_400(self, server):
        self._setup(server)
        status, body = post(server, "/graphs/g/edits", {
            "script": "flip 0 1", "edits": ["flip 0 1"]})
        assert status == 400
        assert "exactly one" in body["error"]

    def test_edits_for_unknown_graph_is_404(self, server):
        status, body = post(server, "/graphs/ghost/edits", {
            "edits": ["flip 0 1"]})
        assert status == 404

    def test_invalid_script_is_rejected_whole(self, server):
        self._setup(server)
        status, body = post(server, "/graphs/g/edits", {
            "script": "remove 0 1\nteleport 2 3"})
        assert status == 400
        assert "invalid edit script" in body["error"]
        # Parse-before-apply: the valid first line must NOT have run.
        _, row = get(server, "/graphs")
        assert row["graphs"][0]["edits"] == 0

    def test_mid_script_failure_reports_progress(self, server):
        self._setup(server)
        status, body = post(server, "/graphs/g/edits", {
            "edits": ["remove 0 1", "remove 0 9"]})
        assert status == 400
        assert "edit 2" in body["error"]
        assert "after 1 applied" in body["error"]

    def test_edit_changes_the_served_answer(self, server):
        self._setup(server)
        payload = {"graph": "graph:g", "problem": "mbc", "tau": 3}
        _, before = post(server, "/solve", payload)
        assert SolveResult.from_json(before["result"]).clique.size == 6
        status, edit = post(server, "/graphs/g/edits", {
            "edits": ["remove 0 1"]})
        assert status == 200
        _, after = post(server, "/solve", payload)
        assert after["fingerprint"] == edit["fingerprint"]
        assert after["fingerprint"] != before["fingerprint"]
        # Removing a positive in-faction edge kills the only 3|3.
        assert SolveResult.from_json(after["result"]).clique.size == 0

    def test_edit_bumps_the_edits_counter(self, server):
        self._setup(server)
        before = counters(server)
        post(server, "/graphs/g/edits", {"edits": ["flip 0 1"]})
        after = counters(server)
        assert counter_delta(before, after, "serve.edits_applied") == 1


class TestEditSolveInterleaving:
    """The cache key must name the graph version actually solved.

    Regression: the key used to be computed *before* the per-graph
    lock was acquired, so an edit could slip in between
    fingerprinting and solving — the post-edit answer was then cached
    under the pre-edit fingerprint, poisoning every later request for
    the original content.  The test forces that exact interleaving by
    pinning the graph lock while a solve is queued on it and editing
    the live graph in the window.
    """

    def test_edit_between_request_and_solve_cannot_poison(
            self, server):
        status, _ = post(server, "/graphs", {
            "name": "g", "graph": {"edges": FACTIONS}, "tau": 3})
        assert status == 200
        app = server.app
        registered = app.service.graphs["g"]

        async def hold_lock() -> None:
            async with app._graph_lock("g"):
                await asyncio.sleep(1.0)

        holder = server.submit_nowait(hold_lock())
        results: "list[tuple[int, dict]]" = []
        thread = threading.Thread(target=lambda: results.append(
            post(server, "/solve", {
                "graph": "graph:g", "problem": "mbc", "tau": 3})))
        thread.start()
        time.sleep(0.3)  # let the solve queue up on the held lock
        # Mutate the live graph in the window (the loop is parked on
        # the lock, so touching the resident solver here is safe).
        app.service.apply_script(registered, "remove 0 1")
        holder.result(timeout=30)
        thread.join(timeout=60)
        assert len(results) == 1
        status, body = results[0]
        assert status == 200
        # The solve ran against the edited graph and must say so:
        # removing the positive in-faction edge kills the only 3|3.
        assert body["fingerprint"] == registered.graph.fingerprint()
        assert SolveResult.from_json(body["result"]).clique.size == 0
        # The original content must still answer correctly — a
        # poisoned cache would replay the post-edit answer here.
        status, original = post(server, "/solve", {
            "graph": {"edges": FACTIONS}, "problem": "mbc", "tau": 3})
        assert status == 200
        assert SolveResult.from_json(
            original["result"]).clique.size == 6


# -- direct coverage of the blocking core ------------------------------


class TestServiceCore:
    def test_cache_rejects_non_optimal_payloads(self):
        cache = ResultCache(4)
        with pytest.raises(ValueError, match="OPTIMAL"):
            cache.put(("f", "mbc", 3, "bitset"),
                      {"status": "budget_exhausted"})

    def test_cache_is_lru(self):
        cache = ResultCache(2)
        for name in ("a", "b", "c"):
            cache.put((name,), {"status": "optimal", "name": name})
        assert ("a",) not in cache
        assert ("b",) in cache and ("c",) in cache
        cache.get(("b",))
        cache.put(("d",), {"status": "optimal"})
        assert ("c",) not in cache and ("b",) in cache

    def test_cache_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_parse_dataset_ref(self):
        assert parse_dataset_ref("dataset:bitcoin") == ("bitcoin", 1.0)
        assert parse_dataset_ref("dataset:Bitcoin@0.5") == \
            ("bitcoin", 0.5)
        with pytest.raises(ProtocolError) as excinfo:
            parse_dataset_ref("dataset:bitcoin@-1")
        assert excinfo.value.status == 400

    def test_service_rejects_unknown_default_engine(self):
        with pytest.raises(ValueError, match="cuda"):
            SolverService(default_engine="cuda")

    def test_pool_size_validation(self):
        from repro.serve import ServeApp
        with pytest.raises(ValueError):
            ServeApp(SolverService(), pool_size=0)
        with pytest.raises(ValueError):
            ServeApp(SolverService(), pool_size=8, max_pending=2)
