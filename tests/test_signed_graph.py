"""Unit tests for the SignedGraph substrate."""

import pytest
from hypothesis import given, settings

from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph

from .conftest import signed_graphs


class TestConstruction:
    def test_empty_graph(self):
        graph = SignedGraph(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_vertex_count(self):
        assert SignedGraph(7).num_vertices == 7

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            SignedGraph(-1)

    def test_from_edges(self):
        graph = SignedGraph.from_edges(
            3, positive_edges=[(0, 1)], negative_edges=[(1, 2)])
        assert graph.sign(0, 1) == POSITIVE
        assert graph.sign(1, 2) == NEGATIVE
        assert graph.sign(0, 2) is None

    def test_from_signed_edges(self):
        graph = SignedGraph.from_signed_edges(
            3, [(0, 1, 1), (1, 2, -1)])
        assert graph.num_positive_edges == 1
        assert graph.num_negative_edges == 1

    def test_labels_must_match_length(self):
        with pytest.raises(ValueError):
            SignedGraph(2, labels=["only-one"])

    def test_labels_round_trip(self):
        graph = SignedGraph(2, labels=["a", "b"])
        assert graph.label(0) == "a"
        assert graph.labels() == ["a", "b"]

    def test_default_labels_are_ids(self):
        graph = SignedGraph(2)
        assert graph.label(1) == "1"
        assert graph.labels() == ["0", "1"]

    def test_copy_is_deep(self):
        graph = SignedGraph.from_edges(3, positive_edges=[(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2, NEGATIVE)
        assert not graph.has_edge(1, 2)
        assert clone.has_edge(1, 2)

    def test_copy_preserves_labels(self):
        graph = SignedGraph(2, labels=["x", "y"])
        assert graph.copy().labels() == ["x", "y"]


class TestEdges:
    def test_add_positive_edge(self):
        graph = SignedGraph(3)
        graph.add_edge(0, 1, POSITIVE)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.sign(1, 0) == POSITIVE

    def test_add_negative_edge(self):
        graph = SignedGraph(3)
        graph.add_edge(0, 2, NEGATIVE)
        assert graph.sign(0, 2) == NEGATIVE

    def test_self_loop_rejected(self):
        graph = SignedGraph(3)
        with pytest.raises(ValueError):
            graph.add_edge(1, 1, POSITIVE)

    def test_out_of_range_rejected(self):
        graph = SignedGraph(3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 3, POSITIVE)

    def test_invalid_sign_rejected(self):
        graph = SignedGraph(3)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, 0)

    def test_conflicting_sign_rejected(self):
        graph = SignedGraph(3)
        graph.add_edge(0, 1, POSITIVE)
        with pytest.raises(ValueError):
            graph.add_edge(0, 1, NEGATIVE)

    def test_duplicate_same_sign_is_idempotent(self):
        graph = SignedGraph(3)
        graph.add_edge(0, 1, POSITIVE)
        graph.add_edge(0, 1, POSITIVE)
        assert graph.num_edges == 1

    def test_remove_edge(self):
        graph = SignedGraph(3)
        graph.add_edge(0, 1, POSITIVE)
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 0

    def test_remove_negative_edge(self):
        graph = SignedGraph(3)
        graph.add_edge(0, 1, NEGATIVE)
        graph.remove_edge(1, 0)
        assert graph.num_edges == 0

    def test_remove_missing_edge_raises(self):
        graph = SignedGraph(3)
        with pytest.raises(KeyError):
            graph.remove_edge(0, 1)

    def test_isolate_vertex(self):
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 1), (0, 2)],
            negative_edges=[(0, 3), (1, 2)])
        graph.isolate_vertex(0)
        assert graph.degree(0) == 0
        assert graph.num_edges == 1
        graph.validate()

    def test_edges_iterates_each_once(self):
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 1), (2, 3)], negative_edges=[(1, 2)])
        edges = sorted(graph.edges())
        assert edges == [(0, 1, 1), (1, 2, -1), (2, 3, 1)]

    def test_add_vertex_extends_graph(self):
        graph = SignedGraph(2)
        new = graph.add_vertex()
        assert new == 2
        graph.add_edge(0, 2, POSITIVE)
        assert graph.has_edge(0, 2)

    def test_add_vertex_with_label(self):
        graph = SignedGraph(1)
        graph.add_vertex(label="hub")
        assert graph.label(1) == "hub"
        assert graph.label(0) == "0"


class TestDegreesAndNeighbors:
    @pytest.fixture
    def graph(self) -> SignedGraph:
        return SignedGraph.from_edges(
            5,
            positive_edges=[(0, 1), (0, 2)],
            negative_edges=[(0, 3), (0, 4), (1, 2)])

    def test_pos_degree(self, graph):
        assert graph.pos_degree(0) == 2

    def test_neg_degree(self, graph):
        assert graph.neg_degree(0) == 2

    def test_total_degree(self, graph):
        assert graph.degree(0) == 4

    def test_pos_neighbors(self, graph):
        assert graph.pos_neighbors(0) == {1, 2}

    def test_neg_neighbors(self, graph):
        assert graph.neg_neighbors(0) == {3, 4}

    def test_neighbors_union(self, graph):
        assert graph.neighbors(0) == {1, 2, 3, 4}

    def test_counts(self, graph):
        assert graph.num_positive_edges == 2
        assert graph.num_negative_edges == 3
        assert graph.num_edges == 5

    def test_negative_ratio(self, graph):
        assert graph.negative_ratio == pytest.approx(0.6)

    def test_negative_ratio_empty_graph(self):
        assert SignedGraph(3).negative_ratio == 0.0

    def test_degree_statistics(self, graph):
        stats = graph.degree_statistics()
        assert stats["max_degree"] == 4
        assert stats["avg_degree"] == pytest.approx(2.0)
        assert stats["max_pos_degree"] == 2
        assert stats["max_neg_degree"] == 2

    def test_degree_statistics_empty(self):
        stats = SignedGraph(0).degree_statistics()
        assert stats["max_degree"] == 0


class TestSubgraph:
    def test_subgraph_basic(self):
        graph = SignedGraph.from_edges(
            5, positive_edges=[(0, 1), (1, 2)],
            negative_edges=[(2, 3), (3, 4)])
        sub, mapping = graph.subgraph([1, 2, 3])
        assert mapping == [1, 2, 3]
        assert sub.num_vertices == 3
        assert sub.sign(0, 1) == POSITIVE  # (1, 2)
        assert sub.sign(1, 2) == NEGATIVE  # (2, 3)
        assert sub.num_edges == 2

    def test_subgraph_excludes_outside_edges(self):
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 1)], negative_edges=[(2, 3)])
        sub, _mapping = graph.subgraph([0, 2])
        assert sub.num_edges == 0

    def test_subgraph_deduplicates_vertices(self):
        graph = SignedGraph(4)
        sub, mapping = graph.subgraph([2, 2, 0])
        assert mapping == [0, 2]
        assert sub.num_vertices == 2

    def test_subgraph_keeps_labels(self):
        graph = SignedGraph(3, labels=["a", "b", "c"])
        sub, _ = graph.subgraph([0, 2])
        assert sub.labels() == ["a", "c"]

    def test_subgraph_validates(self):
        graph = SignedGraph.from_edges(
            6, positive_edges=[(0, 1), (2, 4)],
            negative_edges=[(1, 5), (3, 4)])
        sub, _ = graph.subgraph([1, 3, 4, 5])
        sub.validate()


class TestValidate:
    def test_valid_graph_passes(self, toy_figure2):
        toy_figure2.validate()

    def test_detects_double_sign(self):
        graph = SignedGraph(2)
        graph.add_edge(0, 1, POSITIVE)
        graph._neg[0].add(1)
        graph._neg[1].add(0)
        with pytest.raises(AssertionError):
            graph.validate()

    def test_detects_asymmetry(self):
        graph = SignedGraph(2)
        graph._pos[0].add(1)
        with pytest.raises(AssertionError):
            graph.validate()


class TestPropertyBased:
    @given(signed_graphs(max_vertices=12))
    @settings(max_examples=60, deadline=None)
    def test_random_graphs_validate(self, graph):
        graph.validate()

    @given(signed_graphs(max_vertices=12))
    @settings(max_examples=60, deadline=None)
    def test_edge_count_matches_iteration(self, graph):
        assert graph.num_edges == sum(1 for _ in graph.edges())

    @given(signed_graphs(max_vertices=12))
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_to_twice_edges(self, graph):
        total = sum(graph.degree(v) for v in graph.vertices())
        assert total == 2 * graph.num_edges

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=40, deadline=None)
    def test_subgraph_of_all_vertices_is_identity(self, graph):
        sub, mapping = graph.subgraph(graph.vertices())
        assert mapping == list(graph.vertices())
        assert sorted(sub.edges()) == sorted(graph.edges())

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=40, deadline=None)
    def test_copy_equals_original(self, graph):
        clone = graph.copy()
        assert sorted(clone.edges()) == sorted(graph.edges())


class TestFingerprint:
    def test_stable_across_calls_and_copies(self):
        graph = SignedGraph.from_signed_edges(
            4, [(0, 1, 1), (1, 2, -1), (2, 3, 1)])
        first = graph.fingerprint()
        assert first == graph.fingerprint()
        assert graph.copy().fingerprint() == first

    def test_independent_of_insertion_order(self):
        forward = SignedGraph(3)
        forward.add_edge(0, 1, POSITIVE)
        forward.add_edge(1, 2, NEGATIVE)
        backward = SignedGraph(3)
        backward.add_edge(1, 2, NEGATIVE)
        backward.add_edge(0, 1, POSITIVE)
        assert forward.fingerprint() == backward.fingerprint()

    def test_sensitive_to_content(self):
        base = SignedGraph.from_signed_edges(3, [(0, 1, 1)])
        flipped = SignedGraph.from_signed_edges(3, [(0, 1, -1)])
        extra = SignedGraph.from_signed_edges(3, [(0, 1, 1), (1, 2, 1)])
        bigger = SignedGraph.from_signed_edges(4, [(0, 1, 1)])
        prints = {g.fingerprint() for g in (base, flipped, extra, bigger)}
        assert len(prints) == 4

    def test_mutation_invalidates_cache(self):
        graph = SignedGraph.from_signed_edges(3, [(0, 1, 1)])
        before = graph.fingerprint()
        graph.add_edge(1, 2, NEGATIVE)
        changed = graph.fingerprint()
        assert changed != before
        graph.remove_edge(1, 2)
        assert graph.fingerprint() == before

    def test_format_is_hex_sha256(self):
        print_ = SignedGraph(0).fingerprint()
        assert len(print_) == 64
        assert set(print_) <= set("0123456789abcdef")

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=40, deadline=None)
    def test_equal_content_equal_fingerprint(self, graph):
        rebuilt = SignedGraph.from_signed_edges(
            graph.num_vertices, sorted(graph.edges(), reverse=True))
        assert rebuilt.fingerprint() == graph.fingerprint()


class TestIncrementalFingerprint:
    """The O(1)-per-edit accumulator must always equal a from-scratch
    recomputation — this is the cache key the dynamic solver trusts."""

    @staticmethod
    def _recomputed(graph: SignedGraph) -> str:
        rebuilt = SignedGraph.from_signed_edges(
            graph.num_vertices, sorted(graph.edges()))
        return rebuilt.fingerprint()

    def test_every_mutation_kind_matches_recompute(self):
        graph = SignedGraph.from_signed_edges(
            6, [(0, 1, 1), (0, 2, -1), (1, 2, 1), (3, 4, -1)])
        graph.fingerprint()  # prime the incremental accumulator
        mutations = [
            lambda: graph.add_edge(2, 3, POSITIVE),
            lambda: graph.add_edge(4, 5, NEGATIVE),
            lambda: graph.flip_sign(0, 1),
            lambda: graph.remove_edge(0, 2),
            lambda: graph.flip_sign(0, 1),
            lambda: graph.isolate_vertex(2),
            lambda: graph.remove_edge(3, 4),
        ]
        for mutate in mutations:
            mutate()
            assert graph.fingerprint() == self._recomputed(graph)

    def test_random_edit_stream_matches_recompute(self):
        import random as _random
        rng = _random.Random(42)
        graph = SignedGraph(9)
        graph.fingerprint()
        for _ in range(120):
            u, v = rng.sample(range(9), 2)
            sign = graph.sign(u, v)
            if sign is None:
                graph.add_edge(
                    u, v, NEGATIVE if rng.random() < 0.5 else POSITIVE)
            elif rng.random() < 0.5:
                graph.remove_edge(u, v)
            else:
                graph.flip_sign(u, v)
            assert graph.fingerprint() == self._recomputed(graph)

    def test_remove_then_readd_restores_fingerprint(self):
        graph = SignedGraph.from_signed_edges(
            4, [(0, 1, 1), (1, 2, -1)])
        before = graph.fingerprint()
        graph.remove_edge(1, 2)
        graph.add_edge(1, 2, NEGATIVE)
        assert graph.fingerprint() == before


class TestFlipSign:
    def test_flip_toggles_and_updates_counters(self):
        graph = SignedGraph.from_signed_edges(3, [(0, 1, 1)])
        graph.flip_sign(0, 1)
        assert graph.sign(0, 1) == NEGATIVE
        assert graph.num_positive_edges == 0
        assert graph.num_negative_edges == 1
        graph.flip_sign(0, 1)
        assert graph.sign(0, 1) == POSITIVE
        assert graph.num_positive_edges == 1
        assert graph.num_negative_edges == 0

    def test_flip_missing_edge_raises(self):
        graph = SignedGraph(3)
        with pytest.raises(KeyError):
            graph.flip_sign(0, 1)

    def test_flip_equals_remove_plus_add(self):
        flipped = SignedGraph.from_signed_edges(
            4, [(0, 1, 1), (2, 3, -1)])
        flipped.fingerprint()
        flipped.flip_sign(0, 1)
        rebuilt = SignedGraph.from_signed_edges(
            4, [(0, 1, -1), (2, 3, -1)])
        assert flipped.fingerprint() == rebuilt.fingerprint()
        assert sorted(flipped.edges()) == sorted(rebuilt.edges())
