"""Tests for signed-graph I/O."""

import io

import pytest
from hypothesis import given, settings

from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph
from repro.signed.io import load_signed_graph, parse_edge_lines, \
    read_edge_list, save_signed_graph, write_edge_list

from .conftest import signed_graphs


class TestParse:
    def test_basic_lines(self):
        triples = list(parse_edge_lines(["0 1 1", "1 2 -1"]))
        assert triples == [(0, 1, POSITIVE), (1, 2, NEGATIVE)]

    def test_sign_tokens(self):
        triples = list(parse_edge_lines(
            ["0 1 +1", "0 2 +", "0 3 -", "0 4 -1"]))
        assert [s for _, _, s in triples] == [1, 1, -1, -1]

    def test_skips_comments_and_blanks(self):
        triples = list(parse_edge_lines(
            ["# header", "", "   ", "0 1 1"]))
        assert triples == [(0, 1, POSITIVE)]

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError, match="line 1"):
            list(parse_edge_lines(["0 1"]))

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError, match="non-integer"):
            list(parse_edge_lines(["a b 1"]))

    def test_rejects_bad_sign(self):
        with pytest.raises(ValueError, match="sign"):
            list(parse_edge_lines(["0 1 2"]))

    def test_rejects_self_loop_with_line_number(self):
        # SignedGraph would reject the loop anyway, but only after id
        # compaction has destroyed the line number the user needs.
        with pytest.raises(ValueError, match=r"line 2.*self-loop"):
            list(parse_edge_lines(["0 1 +1", "3 3 -1"]))


class TestReadWrite:
    def test_read_compacts_sparse_ids(self):
        graph = read_edge_list(io.StringIO("10 20 1\n20 30 -1\n"))
        assert graph.num_vertices == 3
        assert graph.sign(0, 1) == POSITIVE
        assert graph.sign(1, 2) == NEGATIVE

    def test_read_merges_duplicates(self):
        graph = read_edge_list(io.StringIO("0 1 1\n1 0 1\n"))
        assert graph.num_edges == 1

    def test_read_rejects_conflicting_duplicates(self):
        with pytest.raises(ValueError, match="conflicting"):
            read_edge_list(io.StringIO("0 1 1\n0 1 -1\n"))

    def test_write_contains_all_edges(self):
        graph = SignedGraph.from_edges(
            3, positive_edges=[(0, 1)], negative_edges=[(1, 2)])
        buffer = io.StringIO()
        write_edge_list(graph, buffer)
        body = buffer.getvalue()
        assert "0 1 1" in body
        assert "1 2 -1" in body

    def test_round_trip_via_stream(self):
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 1), (2, 3)], negative_edges=[(0, 3)])
        buffer = io.StringIO()
        write_edge_list(graph, buffer)
        buffer.seek(0)
        loaded = read_edge_list(buffer)
        assert sorted(loaded.edges()) == sorted(graph.edges())

    def test_round_trip_via_file(self, tmp_path):
        graph = SignedGraph.from_edges(
            5, positive_edges=[(0, 4), (1, 2)], negative_edges=[(3, 4)])
        path = tmp_path / "graph.txt"
        save_signed_graph(graph, path)
        loaded = load_signed_graph(path)
        assert sorted(loaded.edges()) == sorted(graph.edges())

    def test_load_error_names_the_path(self, tmp_path):
        missing = tmp_path / "nope.txt"
        with pytest.raises(OSError, match="nope.txt"):
            load_signed_graph(missing)

    @given(signed_graphs(max_vertices=12))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_property(self, graph):
        buffer = io.StringIO()
        write_edge_list(graph, buffer)
        buffer.seek(0)
        loaded = read_edge_list(buffer)
        # Isolated vertices are not representable in an edge list, so
        # compare edge sets modulo the id compaction.
        used = sorted({u for u, v, _ in graph.edges()}
                      | {v for u, v, _ in graph.edges()})
        relabel = {old: new for new, old in enumerate(used)}
        expected = sorted(
            (relabel[u], relabel[v], s) for u, v, s in graph.edges())
        assert sorted(loaded.edges()) == expected
