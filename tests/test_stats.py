"""Tests for the SearchStats instrumentation."""

import pytest

from repro.core.stats import SearchStats


class TestSearchStats:
    def test_defaults(self):
        stats = SearchStats()
        assert stats.instances == 0
        assert stats.sr1 is None
        assert stats.sr2 is None

    def test_record_reduction(self):
        stats = SearchStats()
        stats.record_reduction(100, 50, 20)
        assert stats.sr1 == pytest.approx(0.5)
        assert stats.sr2 == pytest.approx(0.8)

    def test_record_skips_empty_ego(self):
        stats = SearchStats()
        stats.record_reduction(0, 0, 0)
        assert stats.sr1 is None

    def test_averaging(self):
        stats = SearchStats()
        stats.record_reduction(100, 50, 50)   # SR1 = 0.5
        stats.record_reduction(100, 100, 100)  # SR1 = 0.0
        assert stats.sr1 == pytest.approx(0.25)

    def test_merge(self):
        a = SearchStats(instances=2, nodes=10)
        a.record_reduction(10, 5, 5)
        b = SearchStats(instances=3, nodes=7)
        b.record_reduction(10, 10, 10)
        a.merge(b)
        assert a.instances == 5
        assert a.nodes == 17
        assert len(a.sr1_samples) == 2

    def test_merge_keeps_max_heuristic_and_chains(self):
        a = SearchStats(heuristic_size=6)
        b = SearchStats(heuristic_size=4, vertices_examined=3)
        c = SearchStats(heuristic_size=9, vertices_examined=2)
        result = a.merge(b).merge(c)
        assert result is a
        assert a.heuristic_size == 9
        assert a.vertices_examined == 5

    def test_merged_folds_worker_reports(self):
        runs = []
        for i in range(4):
            run = SearchStats(instances=i, nodes=i * 10)
            run.record_reduction(100, 100 - i, 90 - i)
            runs.append(run)
        total = SearchStats.merged(runs)
        assert total.instances == sum(range(4))
        assert total.nodes == sum(i * 10 for i in range(4))
        assert len(total.sr1_samples) == 4
        assert SearchStats.merged([]).instances == 0

    def test_merge_on_identity_doubles(self):
        # Guard against aliasing: merging a stats object into a fresh
        # accumulator must not mutate the source's sample lists.
        source = SearchStats(instances=1)
        source.record_reduction(10, 5, 5)
        total = SearchStats()
        total.merge(source)
        total.merge(source)
        assert total.instances == 2
        assert len(total.sr1_samples) == 2
        assert len(source.sr1_samples) == 1
