"""Tests for the SearchStats instrumentation."""

import pytest

from repro.core.stats import SearchStats


class TestSearchStats:
    def test_defaults(self):
        stats = SearchStats()
        assert stats.instances == 0
        assert stats.sr1 is None
        assert stats.sr2 is None

    def test_record_reduction(self):
        stats = SearchStats()
        stats.record_reduction(100, 50, 20)
        assert stats.sr1 == pytest.approx(0.5)
        assert stats.sr2 == pytest.approx(0.8)

    def test_record_skips_empty_ego(self):
        stats = SearchStats()
        stats.record_reduction(0, 0, 0)
        assert stats.sr1 is None

    def test_averaging(self):
        stats = SearchStats()
        stats.record_reduction(100, 50, 50)   # SR1 = 0.5
        stats.record_reduction(100, 100, 100)  # SR1 = 0.0
        assert stats.sr1 == pytest.approx(0.25)

    def test_merge(self):
        a = SearchStats(instances=2, nodes=10)
        a.record_reduction(10, 5, 5)
        b = SearchStats(instances=3, nodes=7)
        b.record_reduction(10, 10, 10)
        a.merge(b)
        assert a.instances == 5
        assert a.nodes == 17
        assert len(a.sr1_samples) == 2
