"""Tests tying the implementation back to the paper's formal claims.

Each test realizes one theorem or lemma on concrete instances:

* Theorem 1 — the NP-hardness gadget: the reduction from maximum
  clique to maximum balanced clique behaves as the proof requires;
* Theorem 2 — the dichromatic decomposition computes the optimum;
* Lemma 1 / Lemma 2 — degree pruning and colouring bounds are safe;
* Lemma 4 — the +1 chain over any total ordering;
* Lemma 5 — pn(u) bounds gamma(g_u);
* Lemma 6 — monotonicity over tau.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force_maximum_balanced_clique
from repro.core.mbc_star import mbc_star
from repro.dichromatic.build import build_dichromatic_network
from repro.dichromatic.mdc import solve_mdc
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph
from repro.unsigned.clique import maximum_clique_size
from repro.unsigned.coloring import coloring_upper_bound
from repro.unsigned.graph import UnsignedGraph
from repro.unsigned.ordering import degeneracy_ordering

from .conftest import signed_graphs


def hardness_gadget(unsigned: UnsignedGraph, tau: int) -> SignedGraph:
    """The Theorem 1 reduction: G (all positive) + a positive
    tau-clique, with all cross edges negative."""
    n = unsigned.num_vertices
    signed = SignedGraph(n + tau)
    for u, v in unsigned.edges():
        signed.add_edge(u, v, POSITIVE)
    for i in range(tau):
        for j in range(i + 1, tau):
            signed.add_edge(n + i, n + j, POSITIVE)
    for i in range(tau):
        for v in range(n):
            signed.add_edge(n + i, v, NEGATIVE)
    return signed


class TestTheorem1:
    @given(st.integers(min_value=1, max_value=3),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_reduction_equivalence(self, tau, seed):
        """G has a clique of size >= tau iff the gadget has a balanced
        clique satisfying tau — and the maximum balanced clique size
        equals max-clique size + tau when feasible."""
        import random

        rng = random.Random(seed)
        n = rng.randint(1, 8)
        unsigned = UnsignedGraph(n)
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < 0.5:
                    unsigned.add_edge(u, v)
        gadget = hardness_gadget(unsigned, tau)
        omega = maximum_clique_size(unsigned)
        balanced = mbc_star(gadget, tau)
        if omega >= tau:
            assert balanced.size == omega + tau
        else:
            assert balanced.is_empty


class TestTheorem2:
    @given(signed_graphs(max_vertices=9),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=60, deadline=None)
    def test_decomposition_computes_optimum(self, graph, tau):
        """max over u of (1 + best dichromatic clique in g_u built on
        higher-ranked neighbours) equals the maximum balanced clique
        size."""
        expected = brute_force_maximum_balanced_clique(graph, tau).size
        unsigned = UnsignedGraph.from_signed(graph)
        order = degeneracy_ordering(unsigned)
        rank = {v: i for i, v in enumerate(order)}
        best = 0
        for u in graph.vertices():
            allowed = {v for v in graph.vertices()
                       if rank[v] > rank[u]}
            network = build_dichromatic_network(graph, u, allowed)
            found = solve_mdc(network, tau - 1, tau, must_exceed=-1)
            if found is not None:
                best = max(best, len(found) + 1)
        assert best == expected


class TestLemmas:
    @given(signed_graphs(max_vertices=9),
           st.integers(min_value=0, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_lemma1_degree_pruning_safe(self, graph, tau):
        """Removing vertices with unsigned degree < |C*| - 1 does not
        change the optimum (Lemma 1 applied to balanced cliques)."""
        optimum = brute_force_maximum_balanced_clique(graph, tau)
        if optimum.size <= 1:
            return
        keep = {v for v in graph.vertices()
                if graph.degree(v) >= optimum.size - 1}
        sub, mapping = graph.subgraph(keep)
        reduced_optimum = brute_force_maximum_balanced_clique(sub, tau)
        assert reduced_optimum.size == optimum.size

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_lemma2_coloring_bounds_unsigned_clique(self, graph):
        unsigned = UnsignedGraph.from_signed(graph)
        assert coloring_upper_bound(unsigned) >= \
            maximum_clique_size(unsigned)

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_lemma4_plus_one_chain(self, graph):
        """gamma over the reverse ordering increases by at most one
        per processed vertex (the property PF* exploits)."""
        unsigned = UnsignedGraph.from_signed(graph)
        order = degeneracy_ordering(unsigned)
        rank = {v: i for i, v in enumerate(order)}

        def gamma(u: int) -> int:
            allowed = {v for v in graph.vertices()
                       if rank[v] > rank[u]}
            network = build_dichromatic_network(graph, u, allowed)
            value = 0
            while True:
                found = solve_mdc(network, value, value + 1,
                                  must_exceed=-1, check_only=True)
                if found is None:
                    return value
                value += 1

        running = 0
        for u in reversed(order):
            value = gamma(u)
            assert value <= running + 1
            running = max(running, value)
