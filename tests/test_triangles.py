"""Tests for the signed triangle census."""

import itertools

import pytest
from hypothesis import given, settings

from repro.signed.balance import is_structurally_balanced
from repro.signed.graph import NEGATIVE, POSITIVE, SignedGraph
from repro.signed.triangles import balance_degree, \
    edge_triangle_profile, triangle_census

from .conftest import signed_graphs


def triangle(s1: int, s2: int, s3: int) -> SignedGraph:
    graph = SignedGraph(3)
    graph.add_edge(0, 1, s1)
    graph.add_edge(1, 2, s2)
    graph.add_edge(0, 2, s3)
    return graph


class TestSingleTriangles:
    def test_ppp(self):
        census = triangle_census(triangle(1, 1, 1))
        assert (census.ppp, census.pnn, census.ppn, census.nnn) == \
            (1, 0, 0, 0)

    def test_pnn_all_rotations(self):
        for signs in set(itertools.permutations([1, -1, -1])):
            census = triangle_census(triangle(*signs))
            assert census.pnn == 1, signs
            assert census.total == 1

    def test_ppn_all_rotations(self):
        for signs in set(itertools.permutations([1, 1, -1])):
            census = triangle_census(triangle(*signs))
            assert census.ppn == 1, signs

    def test_nnn(self):
        census = triangle_census(triangle(-1, -1, -1))
        assert census.nnn == 1

    def test_balanced_matches_sign_product(self):
        for signs in itertools.product([1, -1], repeat=3):
            census = triangle_census(triangle(*signs))
            product = signs[0] * signs[1] * signs[2]
            assert census.balanced == (1 if product > 0 else 0)


class TestCensusProperties:
    def test_triangle_free(self):
        graph = SignedGraph.from_edges(
            4, positive_edges=[(0, 1), (2, 3)])
        census = triangle_census(graph)
        assert census.total == 0
        assert census.balance_degree == 1.0

    def test_balanced_clique_counts(self, balanced_six):
        sub, _ = balanced_six.subgraph(range(6))
        census = triangle_census(sub)
        # Two positive triangles (one per side) plus every mixed
        # triangle has exactly one positive and two negative edges.
        assert census.ppp == 2
        assert census.ppn == 0
        assert census.nnn == 0
        assert census.total == 20  # C(6,3)
        assert census.balance_degree == 1.0

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=60, deadline=None)
    def test_total_matches_unsigned_triangle_count(self, graph):
        brute = 0
        vertices = list(graph.vertices())
        for u, v, w in itertools.combinations(vertices, 3):
            if (graph.has_edge(u, v) and graph.has_edge(v, w)
                    and graph.has_edge(u, w)):
                brute += 1
        assert triangle_census(graph).total == brute

    @given(signed_graphs(max_vertices=10))
    @settings(max_examples=60, deadline=None)
    def test_census_matches_brute_force_by_type(self, graph):
        counts = {"ppp": 0, "pnn": 0, "ppn": 0, "nnn": 0}
        vertices = list(graph.vertices())
        for u, v, w in itertools.combinations(vertices, 3):
            signs = [graph.sign(u, v), graph.sign(v, w),
                     graph.sign(u, w)]
            if None in signs:
                continue
            positives = signs.count(1)
            key = {3: "ppp", 2: "ppn", 1: "pnn", 0: "nnn"}[positives]
            counts[key] += 1
        census = triangle_census(graph)
        assert (census.ppp, census.ppn, census.pnn, census.nnn) == (
            counts["ppp"], counts["ppn"], counts["pnn"],
            counts["nnn"])

    @given(signed_graphs(max_vertices=9))
    @settings(max_examples=40, deadline=None)
    def test_balanced_graphs_have_degree_one(self, graph):
        """Every triangle of a structurally balanced graph is balanced
        (cycles have even negative counts)."""
        if is_structurally_balanced(graph):
            assert balance_degree(graph) == 1.0


class TestEdgeProfile:
    def test_profile_counts(self, balanced_six):
        profile = edge_triangle_profile(balanced_six, 0, 1)
        # Third vertex 2: positive to both; 3, 4, 5: negative to both.
        assert profile["pos_pos"] == 1
        assert profile["neg_neg"] == 3
        assert profile["pos_neg"] == 0

    def test_cross_edge_profile(self, balanced_six):
        profile = edge_triangle_profile(balanced_six, 0, 3)
        # Same-side mates of 0 are positive to 0, negative to 3.
        assert profile["pos_neg"] == 2
        assert profile["neg_pos"] == 2
        assert profile["pos_pos"] == 0

    def test_missing_edge_raises(self, balanced_six):
        with pytest.raises(KeyError):
            edge_triangle_profile(balanced_six, 0, 7)
