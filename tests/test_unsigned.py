"""Tests for the unsigned substrate: graph, cores, ordering, coloring,
and the reference maximum-clique solver."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signed.graph import SignedGraph
from repro.unsigned.clique import maximum_clique, maximum_clique_size
from repro.unsigned.coloring import coloring_upper_bound, greedy_coloring, \
    is_proper_coloring
from repro.unsigned.cores import core_numbers, degeneracy, k_core_subset, \
    k_core_vertices, verify_core_property
from repro.unsigned.graph import UnsignedGraph
from repro.unsigned.ordering import degeneracy_ordering, rank_of_ordering

from .conftest import signed_graphs


@st.composite
def unsigned_graphs(draw, max_vertices: int = 14) -> UnsignedGraph:
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    p = draw(st.floats(min_value=0.0, max_value=0.8))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    import random

    rng = random.Random(seed)
    graph = UnsignedGraph(n)
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def to_networkx(graph: UnsignedGraph) -> nx.Graph:
    result = nx.Graph()
    result.add_nodes_from(graph.vertices())
    result.add_edges_from(graph.edges())
    return result


class TestUnsignedGraph:
    def test_from_edges(self):
        graph = UnsignedGraph.from_edges(3, [(0, 1), (1, 2)])
        assert graph.num_edges == 2
        assert graph.has_edge(1, 0)

    def test_from_signed_drops_signs(self):
        signed = SignedGraph.from_edges(
            3, positive_edges=[(0, 1)], negative_edges=[(1, 2)])
        graph = UnsignedGraph.from_signed(signed)
        assert graph.num_edges == 2
        assert graph.has_edge(0, 1) and graph.has_edge(1, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            UnsignedGraph(2).add_edge(0, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            UnsignedGraph(2).add_edge(0, 5)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            UnsignedGraph(-2)

    def test_is_clique(self):
        graph = UnsignedGraph.from_edges(4, [(0, 1), (0, 2), (1, 2)])
        assert graph.is_clique([0, 1, 2])
        assert not graph.is_clique([0, 1, 3])

    def test_copy_is_independent(self):
        graph = UnsignedGraph.from_edges(3, [(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert not graph.has_edge(1, 2)

    def test_degree(self):
        graph = UnsignedGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(1) == 1


class TestCores:
    def test_triangle_core_numbers(self):
        graph = UnsignedGraph.from_edges(
            4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        cores = core_numbers(graph)
        assert cores == [2, 2, 2, 1]

    def test_core_numbers_match_networkx(self):
        graph = UnsignedGraph.from_edges(
            8, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3),
                (6, 7)])
        expected = nx.core_number(to_networkx(graph))
        assert core_numbers(graph) == [expected[v] for v in range(8)]

    @given(unsigned_graphs())
    @settings(max_examples=60, deadline=None)
    def test_core_numbers_match_networkx_random(self, graph):
        expected = nx.core_number(to_networkx(graph))
        assert core_numbers(graph) == [
            expected[v] for v in graph.vertices()]

    def test_k_core_vertices(self):
        graph = UnsignedGraph.from_edges(
            5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
        assert k_core_vertices(graph, 2) == {0, 1, 2}
        assert k_core_vertices(graph, 3) == set()

    def test_k_core_zero_keeps_all(self):
        graph = UnsignedGraph(4)
        assert k_core_vertices(graph, 0) == {0, 1, 2, 3}

    @given(unsigned_graphs(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_k_core_has_min_degree_k(self, graph, k):
        survivors = k_core_vertices(graph, k)
        assert verify_core_property(graph, k, survivors)

    @given(unsigned_graphs(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_k_core_is_maximal(self, graph, k):
        """No removed vertex could have survived: adding any one back
        leaves it with degree < k inside the augmented set."""
        survivors = k_core_vertices(graph, k)
        for v in set(graph.vertices()) - survivors:
            inside = len(graph.neighbors(v) & survivors)
            # v may have had more neighbours among other removed
            # vertices, but within the core itself it must fall short.
            assert inside + 0 < k or not verify_core_property(
                graph, k, survivors | {v})

    def test_k_core_subset_respects_active(self):
        graph = UnsignedGraph.from_edges(
            4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        survivors = k_core_subset(graph, 2, {0, 1, 3})
        assert survivors == set()  # without 2, no triangle remains

    def test_degeneracy_of_clique(self):
        graph = UnsignedGraph.from_edges(
            4, [(u, v) for u in range(4) for v in range(u + 1, 4)])
        assert degeneracy(graph) == 3


class TestOrdering:
    def test_ordering_is_permutation(self):
        graph = UnsignedGraph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        order = degeneracy_ordering(graph)
        assert sorted(order) == list(range(5))

    @given(unsigned_graphs())
    @settings(max_examples=60, deadline=None)
    def test_ordering_property(self, graph):
        """Each vertex's back-degree (neighbours ranked later) is at
        most the graph degeneracy — the defining property MBC* needs
        for small ego-networks."""
        order = degeneracy_ordering(graph)
        assert sorted(order) == list(graph.vertices())
        rank = rank_of_ordering(order)
        limit = degeneracy(graph)
        for v in graph.vertices():
            back = sum(1 for u in graph.neighbors(v)
                       if rank[u] > rank[v])
            assert back <= limit

    def test_rank_inverse(self):
        order = [2, 0, 1]
        rank = rank_of_ordering(order)
        assert rank == [1, 2, 0]
        assert [order[rank[v]] for v in range(3)] == [0, 1, 2]

    def test_star_ordering_puts_center_last(self):
        graph = UnsignedGraph.from_edges(5, [(0, v) for v in range(1, 5)])
        order = degeneracy_ordering(graph)
        # Leaves peel first; the hub is peeled last or near-last.
        assert order[-1] == 0 or graph.degree(order[-1]) == 1


class TestColoring:
    @given(unsigned_graphs())
    @settings(max_examples=60, deadline=None)
    def test_coloring_is_proper(self, graph):
        colors = greedy_coloring(graph)
        assert is_proper_coloring(graph, colors)
        assert set(colors) == set(graph.vertices())

    @given(unsigned_graphs())
    @settings(max_examples=40, deadline=None)
    def test_bound_at_least_clique(self, graph):
        assert coloring_upper_bound(graph) >= maximum_clique_size(graph)

    def test_bound_on_bipartite(self):
        graph = UnsignedGraph.from_edges(
            6, [(u, v) for u in range(3) for v in range(3, 6)])
        assert coloring_upper_bound(graph) == 2

    def test_bound_on_empty_set(self):
        graph = UnsignedGraph(5)
        assert coloring_upper_bound(graph, active=set()) == 0

    def test_bound_restricted_to_active(self):
        graph = UnsignedGraph.from_edges(
            4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        assert coloring_upper_bound(graph, active={0, 3}) == 1

    def test_improper_coloring_detected(self):
        graph = UnsignedGraph.from_edges(2, [(0, 1)])
        assert not is_proper_coloring(graph, {0: 0, 1: 0})


class TestMaximumClique:
    def test_triangle(self):
        graph = UnsignedGraph.from_edges(
            5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)])
        clique = maximum_clique(graph)
        assert clique == {0, 1, 2}

    def test_empty_graph(self):
        assert maximum_clique(UnsignedGraph(0)) == set()

    def test_edgeless_graph(self):
        assert len(maximum_clique(UnsignedGraph(4))) == 1

    def test_complete_graph(self):
        n = 7
        graph = UnsignedGraph.from_edges(
            n, [(u, v) for u in range(n) for v in range(u + 1, n)])
        assert maximum_clique_size(graph) == n

    @given(unsigned_graphs())
    @settings(max_examples=60, deadline=None)
    def test_matches_networkx(self, graph):
        expected = max(
            (len(c) for c in nx.find_cliques(to_networkx(graph))),
            default=0)
        found = maximum_clique(graph)
        assert len(found) == expected
        assert graph.is_clique(found)
